//! Per-function control-flow graphs over the mini-C++ AST.
//!
//! The static passes (locksets, deadlock prediction, lints) are all
//! forward dataflow problems, so the CFG keeps the AST statements intact
//! and only makes control edges explicit: `if` becomes a two-way branch
//! that rejoins, `while` a header with a back edge, `return` an edge to
//! the synthetic exit block. Branch conditions are kept as [`CfgStmt::Cond`]
//! nodes so their reads participate in the race check.

use crate::ast::{Expr, FuncDef, Stmt};

pub type BlockId = usize;

/// One CFG node: either a real statement or a branch condition.
#[derive(Clone, Debug)]
pub enum CfgStmt<'a> {
    Stmt(&'a Stmt),
    /// Condition of an `if`/`while`, evaluated in this block (reads only).
    Cond(&'a Expr, u32),
}

impl CfgStmt<'_> {
    pub fn line(&self) -> u32 {
        match self {
            CfgStmt::Stmt(s) => s.line(),
            CfgStmt::Cond(_, line) => *line,
        }
    }
}

#[derive(Clone, Debug, Default)]
pub struct Block<'a> {
    pub stmts: Vec<CfgStmt<'a>>,
    pub succs: Vec<BlockId>,
}

#[derive(Clone, Debug)]
pub struct Cfg<'a> {
    pub blocks: Vec<Block<'a>>,
    pub entry: BlockId,
    /// Synthetic exit; every `return` and the final fallthrough edge here.
    pub exit: BlockId,
}

impl<'a> Cfg<'a> {
    pub fn build(func: &'a FuncDef) -> Cfg<'a> {
        let mut blocks: Vec<Block<'a>> = vec![Block::default(), Block::default()];
        let entry = 0;
        let exit = 1;
        let last = lower(&func.body, entry, exit, &mut blocks);
        blocks[last].succs.push(exit);
        Cfg { blocks, entry, exit }
    }

    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                preds[s].push(b);
            }
        }
        preds
    }
}

fn new_block<'a>(blocks: &mut Vec<Block<'a>>) -> BlockId {
    blocks.push(Block::default());
    blocks.len() - 1
}

/// Lower a statement sequence starting in `cur`; returns the block left
/// open after the sequence (its terminator edge is the caller's job).
fn lower<'a>(
    stmts: &'a [Stmt],
    mut cur: BlockId,
    exit: BlockId,
    blocks: &mut Vec<Block<'a>>,
) -> BlockId {
    for s in stmts {
        match s {
            Stmt::If { cond, then_branch, else_branch, line } => {
                blocks[cur].stmts.push(CfgStmt::Cond(cond, *line));
                let then_entry = new_block(blocks);
                let else_entry = new_block(blocks);
                blocks[cur].succs.push(then_entry);
                blocks[cur].succs.push(else_entry);
                let t_end = lower(then_branch, then_entry, exit, blocks);
                let e_end = lower(else_branch, else_entry, exit, blocks);
                let join = new_block(blocks);
                blocks[t_end].succs.push(join);
                blocks[e_end].succs.push(join);
                cur = join;
            }
            Stmt::While { cond, body, line } => {
                let header = new_block(blocks);
                blocks[cur].succs.push(header);
                blocks[header].stmts.push(CfgStmt::Cond(cond, *line));
                let body_entry = new_block(blocks);
                let after = new_block(blocks);
                blocks[header].succs.push(body_entry);
                blocks[header].succs.push(after);
                let b_end = lower(body, body_entry, exit, blocks);
                blocks[b_end].succs.push(header);
                cur = after;
            }
            Stmt::Return { .. } => {
                blocks[cur].stmts.push(CfgStmt::Stmt(s));
                blocks[cur].succs.push(exit);
                // Anything after a return is dead; give it an unreachable
                // block (no predecessors), which the dataflow skips.
                cur = new_block(blocks);
            }
            _ => blocks[cur].stmts.push(CfgStmt::Stmt(s)),
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn cfg_of(src: &str) -> (crate::ast::Unit, usize) {
        let unit = parse(src).unwrap();
        let n = Cfg::build(&unit.functions[0]).blocks.len();
        (unit, n)
    }

    #[test]
    fn straight_line_is_two_blocks() {
        let (_, n) = cfg_of("mutex m;\nvoid main() { lock(m); unlock(m); }");
        assert_eq!(n, 2, "entry + exit");
    }

    #[test]
    fn if_adds_branches_and_join() {
        let unit =
            parse("int g;\nvoid main() { if (g == 1) { g = 2; } else { g = 3; } g = 4; }").unwrap();
        let cfg = Cfg::build(&unit.functions[0]);
        // entry (cond), exit, then, else, join
        assert_eq!(cfg.blocks.len(), 5);
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 2);
        let preds = cfg.preds();
        // The join block has two predecessors and falls through to exit.
        let join = (0..cfg.blocks.len()).find(|&b| preds[b].len() == 2).unwrap();
        assert_eq!(cfg.blocks[join].succs, vec![cfg.exit]);
    }

    #[test]
    fn while_has_back_edge() {
        let unit = parse("int g;\nvoid main() { while (g < 3) { g = g + 1; } }").unwrap();
        let cfg = Cfg::build(&unit.functions[0]);
        let preds = cfg.preds();
        // Header: reached from both entry and the loop body.
        let header = (0..cfg.blocks.len())
            .find(|&b| preds[b].len() == 2 && !cfg.blocks[b].stmts.is_empty())
            .expect("loop header");
        assert!(matches!(cfg.blocks[header].stmts[0], CfgStmt::Cond(..)));
    }

    #[test]
    fn return_edges_to_exit() {
        let unit = parse("int g;\nint f() { return 1; }\nvoid main() { g = f(); }").unwrap();
        let cfg = Cfg::build(&unit.functions[0]);
        assert!(cfg.blocks[cfg.entry].succs.contains(&cfg.exit));
    }
}
