//! Lint passes over the lockset dataflow: lock-discipline mistakes and
//! the paper's destructor-annotation gap, caught before any execution.

use super::cfg::CfgStmt;
use super::lockset::{LockAnalysis, LockSet, Mode};
use super::ProgramView;
use crate::ast::{ParamType, Stmt};
use std::collections::BTreeSet;

/// One lint finding, pre-`Report` (the caller attaches files/rendering).
#[derive(Clone, Debug)]
pub struct LintFinding {
    pub kind: LintKind,
    pub func: String,
    pub line: u32,
    pub details: String,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LintKind {
    DoubleLock,
    UnlockWithoutLock,
    LockLeak,
    UnannotatedDelete,
    DeleteWhileLocked,
}

/// Does `class` (or an ancestor) declare a virtual destructor?
fn polymorphic(view: &ProgramView<'_>, class: &str) -> bool {
    let mut cur = Some(class.to_string());
    let mut fuel = 64; // cycle guard for malformed hierarchies
    while let Some(c) = cur {
        let Some(def) = view.classes.get(&c) else { return false };
        if def.virtual_dtor {
            return true;
        }
        fuel -= 1;
        if fuel == 0 {
            return false;
        }
        cur = def.base.clone();
    }
    false
}

/// The declared class of a pointer variable in `func`: a `Class* p = ...`
/// declaration or a `Class*` parameter.
fn pointer_class(view: &ProgramView<'_>, func: &str, var: &str) -> Option<String> {
    let f = view.funcs.get(func)?;
    for (ty, name) in &f.params {
        if let (ParamType::Ptr(c), true) = (ty, name == var) {
            return Some(c.clone());
        }
    }
    let mut found = None;
    super::callgraph::visit_stmts(&f.body, &mut |s| {
        if let Stmt::LetPtr { class, name, .. } = s {
            if name == var && found.is_none() {
                found = Some(class.clone());
            }
        }
    });
    found
}

pub fn run(view: &ProgramView<'_>, la: &LockAnalysis<'_>) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for (name, flow) in &la.flows {
        let entry_keys: BTreeSet<String> = la
            .entry_ctx
            .get(name)
            .and_then(|c| c.as_ref())
            .map(|c| c.keys().cloned().collect())
            .unwrap_or_default();
        let own_releases = &la.summaries[name].may_release;

        for (b, blk) in flow.cfg.blocks.iter().enumerate() {
            for (k, cs) in blk.stmts.iter().enumerate() {
                let CfgStmt::Stmt(stmt) = cs else { continue };
                let must = flow.must_in[b][k].as_ref();
                let may = flow.may_in[b][k].as_ref();
                match stmt {
                    Stmt::Lock { mutex: m, line } | Stmt::WrLock { rwlock: m, line }
                        if must.is_some_and(|h| h.contains_key(m)) =>
                    {
                        out.push(LintFinding {
                            kind: LintKind::DoubleLock,
                            func: name.clone(),
                            line: *line,
                            details: format!(
                                "'{m}' is already held on every path reaching this \
                                 acquisition (self-deadlock)"
                            ),
                        });
                    }
                    // rd-after-rd is legal on POSIX rwlocks; only a
                    // write-held relock self-deadlocks.
                    Stmt::RdLock { rwlock: m, line }
                        if must.is_some_and(|h| h.get(m) == Some(&Mode::Exclusive)) =>
                    {
                        out.push(LintFinding {
                            kind: LintKind::DoubleLock,
                            func: name.clone(),
                            line: *line,
                            details: format!(
                                "'{m}' is already write-held on every path reaching \
                                 this rdlock (self-deadlock)"
                            ),
                        });
                    }
                    Stmt::Unlock { mutex: m, line } | Stmt::RwUnlock { rwlock: m, line }
                        if may.is_some_and(|h| !h.contains(m)) =>
                    {
                        out.push(LintFinding {
                            kind: LintKind::UnlockWithoutLock,
                            func: name.clone(),
                            line: *line,
                            details: format!("'{m}' cannot be held on any path here"),
                        });
                    }
                    Stmt::Delete { ptr, annotated, line } => {
                        if let Some(held) = must {
                            if !held.is_empty() {
                                let names: Vec<&str> = held.keys().map(|s| s.as_str()).collect();
                                out.push(LintFinding {
                                    kind: LintKind::DeleteWhileLocked,
                                    func: name.clone(),
                                    line: *line,
                                    details: format!(
                                        "'delete {ptr}' runs while holding {}; destructors \
                                         are opaque and may block or re-enter",
                                        names.join(", ")
                                    ),
                                });
                            }
                        }
                        if !annotated {
                            if let Some(class) = pointer_class(view, name, ptr) {
                                if polymorphic(view, &class) {
                                    out.push(LintFinding {
                                        kind: LintKind::UnannotatedDelete,
                                        func: name.clone(),
                                        line: *line,
                                        details: format!(
                                            "'delete {ptr}' destroys polymorphic class \
                                             '{class}' without the DR annotation; the \
                                             vptr write in the destructor stays invisible \
                                             to the dynamic detector"
                                        ),
                                    });
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        // Lock leaks: a path reaches the function exit still holding a
        // lock this function (transitively) does release elsewhere —
        // deliberate lock-wrapper functions never release, so they are
        // exempt. Locks already held at entry belong to the caller.
        let mut leaked_seen: BTreeSet<(u32, String)> = BTreeSet::new();
        for (b, blk) in flow.cfg.blocks.iter().enumerate() {
            if !blk.succs.contains(&flow.cfg.exit) || b == flow.cfg.exit {
                continue;
            }
            // Empty or unreachable blocks carry nothing to report.
            let Some(Some(first_in)) = flow.must_in[b].first() else { continue };
            // Replay the block to its out-state.
            let mut cur: LockSet = first_in.clone();
            for s in &blk.stmts {
                super::lockset::replay_must(s, &mut cur, &la.summaries);
            }
            let Some(line) = blk.stmts.last().map(|s| s.line()) else { continue };
            for (m, _) in cur.iter() {
                if entry_keys.contains(m) || !own_releases.contains(m) {
                    continue;
                }
                if leaked_seen.insert((line, m.clone())) {
                    out.push(LintFinding {
                        kind: LintKind::LockLeak,
                        func: name.clone(),
                        line,
                        details: format!(
                            "this exit path leaves '{m}' held, but other paths in \
                             '{name}' release it"
                        ),
                    });
                }
            }
        }
    }
    out
}
