//! Static lock-order graph and AB-BA cycle prediction.
//!
//! Mirrors `helgrind_core::lockorder` on the static side: every lock
//! acquisition performed while other locks are must-held contributes
//! ordering edges `held -> acquired`; a cycle in the resulting graph is a
//! potential deadlock even if no schedule has exercised it yet — the
//! paper's motivation for pairing dynamic detection with prediction.

use super::cfg::CfgStmt;
use super::lockset::LockAnalysis;
use super::ProgramView;
use crate::ast::Stmt;
use std::collections::{BTreeMap, BTreeSet};

/// Where an ordering edge was observed.
#[derive(Clone, Debug)]
pub struct EdgeLoc {
    pub file: String,
    pub line: u32,
    pub func: String,
}

/// A predicted deadlock cycle.
#[derive(Clone, Debug)]
pub struct StaticCycle {
    /// Lock names, closing element repeated: `[a, b, a]`.
    pub cycle: Vec<String>,
    /// One location per edge of the cycle.
    pub edge_locs: Vec<EdgeLoc>,
}

impl StaticCycle {
    pub fn describe(&self) -> String {
        format!("lock order cycle: {}", self.cycle.join(" -> "))
    }
}

/// Canonical cycle body: drop the closing element, rotate min-first
/// (same scheme as the dynamic graph's deduplication).
fn canonicalise(cycle: &[String]) -> Vec<String> {
    let body = &cycle[..cycle.len() - 1];
    let min_pos = body.iter().enumerate().min_by_key(|&(_, l)| l).map(|(i, _)| i).unwrap_or(0);
    body.iter().cycle().skip(min_pos).take(body.len()).cloned().collect()
}

pub fn find_cycles(view: &ProgramView<'_>, la: &LockAnalysis<'_>) -> Vec<StaticCycle> {
    // held -> acquired -> first location.
    let mut edges: BTreeMap<String, BTreeMap<String, EdgeLoc>> = BTreeMap::new();
    for (name, flow) in &la.flows {
        let file = view.files.get(name).cloned().unwrap_or_default();
        for (b, blk) in flow.cfg.blocks.iter().enumerate() {
            for (k, cs) in blk.stmts.iter().enumerate() {
                let acquired = match cs {
                    CfgStmt::Stmt(Stmt::Lock { mutex: m, line })
                    | CfgStmt::Stmt(Stmt::RdLock { rwlock: m, line })
                    | CfgStmt::Stmt(Stmt::WrLock { rwlock: m, line }) => Some((m, *line)),
                    _ => None,
                };
                let Some((m, line)) = acquired else { continue };
                let Some(held) = &flow.must_in[b][k] else { continue };
                for h in held.keys().filter(|h| *h != m) {
                    edges.entry(h.clone()).or_default().entry(m.clone()).or_insert(EdgeLoc {
                        file: file.clone(),
                        line,
                        func: name.clone(),
                    });
                }
            }
        }
    }

    // For each edge a->b, a path b ->* a closes a cycle.
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut cycles = Vec::new();
    for (a, succs) in &edges {
        for b in succs.keys() {
            if let Some(mut path) = path(&edges, b, a) {
                // path = [b, ..., a]; close it through the a->b edge.
                path.push(b.clone());
                if !seen.insert(canonicalise(&path)) {
                    continue;
                }
                let edge_locs = path.windows(2).map(|w| edges[&w[0]][&w[1]].clone()).collect();
                cycles.push(StaticCycle { cycle: path, edge_locs });
            }
        }
    }
    cycles
}

fn path(
    edges: &BTreeMap<String, BTreeMap<String, EdgeLoc>>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    fn dfs(
        edges: &BTreeMap<String, BTreeMap<String, EdgeLoc>>,
        cur: &str,
        to: &str,
        visited: &mut BTreeSet<String>,
        trail: &mut Vec<String>,
    ) -> bool {
        trail.push(cur.to_string());
        if cur == to {
            return true;
        }
        if let Some(succs) = edges.get(cur) {
            for next in succs.keys() {
                if visited.insert(next.clone()) && dfs(edges, next, to, visited, trail) {
                    return true;
                }
            }
        }
        trail.pop();
        false
    }
    let mut visited: BTreeSet<String> = std::iter::once(from.to_string()).collect();
    let mut trail = Vec::new();
    dfs(edges, from, to, &mut visited, &mut trail).then_some(trail)
}
