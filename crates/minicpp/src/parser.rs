//! Recursive-descent parser for mini-C++.

use crate::ast::*;
use crate::token::{lex, LexError, Token, TokenKind};

/// A parse error with a source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { line: e.line, message: e.message }
    }
}

/// Parse a (preprocessed) translation unit.
pub fn parse(src: &str) -> Result<Unit, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.unit()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { line: self.line(), message: message.into() })
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {}, found {}", kind.describe(), self.peek().describe()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {}", other.describe()))
            }
        }
    }

    fn unit(&mut self) -> Result<Unit, ParseError> {
        let mut unit = Unit::default();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::KwClass => unit.classes.push(self.class_def()?),
                TokenKind::KwMutex | TokenKind::KwRwLock => {
                    let kind = if *self.peek() == TokenKind::KwMutex {
                        GlobalKind::Mutex
                    } else {
                        GlobalKind::RwLock
                    };
                    let line = self.line();
                    self.bump();
                    let name = self.ident()?;
                    self.expect(TokenKind::Semi)?;
                    unit.globals.push(GlobalDef { kind, name, line });
                }
                TokenKind::KwInt => {
                    // `int name;` (global) or `int name(...)` (function).
                    if let TokenKind::Ident(_) = self.peek2() {
                        let save = self.pos;
                        self.bump();
                        let name = self.ident()?;
                        if *self.peek() == TokenKind::LParen {
                            self.pos = save;
                            unit.functions.push(self.func_def()?);
                        } else {
                            let line = self.tokens[save].line;
                            self.expect(TokenKind::Semi)?;
                            unit.globals.push(GlobalDef { kind: GlobalKind::Int, name, line });
                        }
                    } else {
                        return self.err("expected name after `int`");
                    }
                }
                TokenKind::KwVoid => unit.functions.push(self.func_def()?),
                other => {
                    let d = other.describe();
                    return self.err(format!("expected declaration, found {d}"));
                }
            }
        }
        Ok(unit)
    }

    fn class_def(&mut self) -> Result<ClassDef, ParseError> {
        let line = self.line();
        self.expect(TokenKind::KwClass)?;
        let name = self.ident()?;
        let base = if *self.peek() == TokenKind::Colon {
            self.bump();
            Some(self.ident()?)
        } else {
            None
        };
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        let mut virtual_dtor = false;
        loop {
            match self.peek() {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::KwInt => {
                    self.bump();
                    fields.push(self.ident()?);
                    self.expect(TokenKind::Semi)?;
                }
                TokenKind::KwVirtual | TokenKind::Tilde => {
                    if *self.peek() == TokenKind::KwVirtual {
                        self.bump();
                    }
                    self.expect(TokenKind::Tilde)?;
                    let dname = self.ident()?;
                    if dname != name {
                        return self
                            .err(format!("destructor ~{dname} does not match class {name}"));
                    }
                    self.expect(TokenKind::LParen)?;
                    self.expect(TokenKind::RParen)?;
                    self.expect(TokenKind::LBrace)?;
                    self.expect(TokenKind::RBrace)?;
                    virtual_dtor = true;
                }
                other => {
                    let d = other.describe();
                    return self.err(format!("unexpected class member starting with {d}"));
                }
            }
        }
        self.expect(TokenKind::Semi)?;
        Ok(ClassDef { name, base, fields, virtual_dtor, line })
    }

    fn func_def(&mut self) -> Result<FuncDef, ParseError> {
        let line = self.line();
        let returns_int = match self.bump() {
            TokenKind::KwInt => true,
            TokenKind::KwVoid => false,
            other => {
                self.pos -= 1;
                return self.err(format!("expected return type, found {}", other.describe()));
            }
        };
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let ty = match self.bump() {
                    TokenKind::KwInt => ParamType::Int,
                    TokenKind::Ident(class) => {
                        self.expect(TokenKind::Star)?;
                        ParamType::Ptr(class)
                    }
                    other => {
                        self.pos -= 1;
                        return self
                            .err(format!("expected parameter type, found {}", other.describe()));
                    }
                };
                let pname = self.ident()?;
                params.push((ty, pname));
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        Ok(FuncDef { name, params, returns_int, body, line })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            if *self.peek() == TokenKind::Eof {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::KwInt => {
                self.bump();
                let name = self.ident()?;
                self.expect(TokenKind::Assign)?;
                let value = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::LetInt { name, value, line })
            }
            TokenKind::KwThread => {
                self.bump();
                let name = self.ident()?;
                self.expect(TokenKind::Assign)?;
                self.expect(TokenKind::KwSpawn)?;
                let func = self.ident()?;
                self.expect(TokenKind::LParen)?;
                let args = self.args()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::LetThread { name, func, args, line })
            }
            TokenKind::KwDelete => {
                self.bump();
                let ptr = self.ident()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Delete { ptr, annotated: false, line })
            }
            TokenKind::KwLock => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let mutex = self.ident()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Lock { mutex, line })
            }
            TokenKind::KwUnlock => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let mutex = self.ident()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Unlock { mutex, line })
            }
            TokenKind::KwRdLock | TokenKind::KwWrLock | TokenKind::KwRwUnlock => {
                let tok = self.bump();
                self.expect(TokenKind::LParen)?;
                let rwlock = self.ident()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(match tok {
                    TokenKind::KwRdLock => Stmt::RdLock { rwlock, line },
                    TokenKind::KwWrLock => Stmt::WrLock { rwlock, line },
                    _ => Stmt::RwUnlock { rwlock, line },
                })
            }
            TokenKind::KwAtomicInc => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let target = self.expr()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::AtomicInc { target, line })
            }
            TokenKind::KwJoin => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let thread = self.ident()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Join { thread, line })
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then_branch = self.block()?;
                let else_branch = if *self.peek() == TokenKind::KwElse {
                    self.bump();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then_branch, else_branch, line })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, line })
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if *self.peek() == TokenKind::Semi { None } else { Some(self.expr()?) };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Return { value, line })
            }
            TokenKind::Ident(first) => {
                // Could be: `Class* p = ...;`, `x = e;`, `p->f = e;`, or a call.
                match self.peek2().clone() {
                    TokenKind::Star => {
                        self.bump(); // class name
                        self.bump(); // star
                        let name = self.ident()?;
                        self.expect(TokenKind::Assign)?;
                        let value = self.expr()?;
                        self.expect(TokenKind::Semi)?;
                        Ok(Stmt::LetPtr { class: first, name, value, line })
                    }
                    TokenKind::Assign => {
                        self.bump();
                        self.bump();
                        let value = self.expr()?;
                        self.expect(TokenKind::Semi)?;
                        Ok(Stmt::Assign { name: first, value, line })
                    }
                    TokenKind::Arrow => {
                        self.bump();
                        self.bump();
                        let field = self.ident()?;
                        if *self.peek() == TokenKind::Assign {
                            self.bump();
                            let value = self.expr()?;
                            self.expect(TokenKind::Semi)?;
                            Ok(Stmt::FieldAssign { base: first, field, value, line })
                        } else if *self.peek() == TokenKind::LParen {
                            // `p->method();` — a virtual call.
                            self.bump();
                            self.expect(TokenKind::RParen)?;
                            self.expect(TokenKind::Semi)?;
                            Ok(Stmt::VirtualCall { base: first, method: field, line })
                        } else {
                            self.err("expected `=` or `(` after field access statement")
                        }
                    }
                    TokenKind::LParen => {
                        self.bump();
                        self.bump();
                        let args = self.args()?;
                        self.expect(TokenKind::Semi)?;
                        Ok(Stmt::Call { func: first, args, line })
                    }
                    other => {
                        self.err(format!("unexpected token after identifier: {}", other.describe()))
                    }
                }
            }
            other => self.err(format!("unexpected statement start: {}", other.describe())),
        }
    }

    /// Arguments up to and including the closing paren.
    fn args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut out = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                out.push(self.expr()?);
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(out)
    }

    /// expr := cmp ((==|!=|<|<=|>|>=) cmp)?
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            TokenKind::EqEq => Some(BinOp::Eq),
            TokenKind::NotEq => Some(BinOp::Ne),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.additive()?;
            Ok(Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
        } else {
            Ok(lhs)
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.primary()?;
        while *self.peek() == TokenKind::Star {
            self.bump();
            let rhs = self.primary()?;
            lhs = Expr::Bin { op: BinOp::Mul, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::Int(v)),
            TokenKind::KwNew => {
                let class = self.ident()?;
                Ok(Expr::New { class })
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => match self.peek() {
                TokenKind::Arrow => {
                    self.bump();
                    let field = self.ident()?;
                    Ok(Expr::Field { base: name, field })
                }
                TokenKind::LParen => {
                    self.bump();
                    let args = self.args()?;
                    Ok(Expr::Call { func: name, args })
                }
                _ => Ok(Expr::Var(name)),
            },
            other => {
                self.pos -= 1;
                self.err(format!("expected expression, found {}", other.describe()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig4_original_source() {
        let src = "void g(char* p) { delete p; }";
        let unit = parse(src).unwrap();
        assert_eq!(unit.functions.len(), 1);
        let f = &unit.functions[0];
        assert_eq!(f.name, "g");
        assert_eq!(f.params, vec![(ParamType::Ptr("char".into()), "p".into())]);
        assert_eq!(f.body, vec![Stmt::Delete { ptr: "p".into(), annotated: false, line: 1 }]);
    }

    #[test]
    fn parses_class_hierarchy() {
        let src = "
class Base {
    int x;
    virtual ~Base() {}
};
class Msg : Base {
    int len;
    ~Msg() {}
};
";
        let unit = parse(src).unwrap();
        assert_eq!(unit.classes.len(), 2);
        assert_eq!(unit.classes[0].name, "Base");
        assert!(unit.classes[0].virtual_dtor);
        assert_eq!(unit.classes[1].base.as_deref(), Some("Base"));
        assert_eq!(unit.classes[1].fields, vec!["len".to_string()]);
    }

    #[test]
    fn parses_threads_and_locks() {
        let src = "
mutex g_m;
int g_count;
void worker(Msg* m) {
    lock(g_m);
    g_count = g_count + 1;
    unlock(g_m);
    int v = m->len;
    delete m;
}
void main() {
    Msg* m = new Msg;
    m->len = 5;
    thread t = spawn worker(m);
    join(t);
}
";
        let unit = parse(src).unwrap();
        assert_eq!(unit.globals.len(), 2);
        assert_eq!(unit.globals[0].kind, GlobalKind::Mutex);
        assert_eq!(unit.functions.len(), 2);
        let main = &unit.functions[1];
        assert!(matches!(main.body[0], Stmt::LetPtr { .. }));
        assert!(matches!(main.body[1], Stmt::FieldAssign { .. }));
        assert!(matches!(main.body[2], Stmt::LetThread { .. }));
        assert!(matches!(main.body[3], Stmt::Join { .. }));
    }

    #[test]
    fn parses_control_flow_and_precedence() {
        let src = "void f() { int x = 1 + 2 * 3; if (x == 7) { x = 0; } else { while (x > 0) { x = x - 1; } } }";
        let unit = parse(src).unwrap();
        let f = &unit.functions[0];
        match &f.body[0] {
            Stmt::LetInt { value, .. } => match value {
                Expr::Bin { op: BinOp::Add, rhs, .. } => {
                    assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }))
                }
                other => panic!("precedence broken: {other:?}"),
            },
            other => panic!("{other:?}"),
        }
        assert!(matches!(f.body[1], Stmt::If { .. }));
    }

    #[test]
    fn parses_atomic_inc_and_calls() {
        let src = "int helper(int a) { return a + 1; } void f() { atomic_inc(g_rc); int x = helper(2); helper(x); }";
        let unit = parse(src).unwrap();
        assert_eq!(unit.functions.len(), 2);
        let f = &unit.functions[1];
        assert!(matches!(f.body[0], Stmt::AtomicInc { .. }));
        assert!(matches!(f.body[2], Stmt::Call { .. }));
    }

    #[test]
    fn error_reports_line() {
        let err = parse("void f() {\n  int x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse("class X { int }").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_mismatched_destructor() {
        let err = parse("class A { ~B() {} };").unwrap_err();
        assert!(err.message.contains("does not match"));
    }

    #[test]
    fn roundtrip_render_parse() {
        let src = "
class Msg {
    int len;
    virtual ~Msg() {}
};
int g_count;
void main() {
    Msg* m = new Msg;
    m->len = 5;
    delete m;
}
";
        let unit = parse(src).unwrap();
        let printed = crate::ast::render(&unit);
        let reparsed = parse(&printed).unwrap();
        // Lines shift, so compare structure modulo lines via re-render.
        assert_eq!(crate::ast::render(&reparsed), printed);
    }
}
