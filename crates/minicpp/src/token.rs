//! Lexer for mini-C++.
//!
//! The paper's instrumentation pipeline parses *preprocessed* C++ with the
//! ELSA GLR parser. Our mini-C++ covers the constructs the experiments
//! need — classes with single inheritance and virtual destructors, free
//! functions, globals, `new`/`delete`, pthread-shaped threading and
//! locking — which is exactly the surface the annotation transform (Fig 4)
//! has to understand.

/// A lexical token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and names.
    Int(u64),
    Ident(String),
    // Keywords.
    KwClass,
    KwVirtual,
    KwInt,
    KwVoid,
    KwNew,
    KwDelete,
    KwIf,
    KwElse,
    KwWhile,
    KwReturn,
    KwMutex,
    KwRwLock,
    KwThread,
    KwSpawn,
    KwJoin,
    KwLock,
    KwUnlock,
    KwRdLock,
    KwWrLock,
    KwRwUnlock,
    KwAtomicInc,
    // Punctuation.
    LBrace,
    RBrace,
    LParen,
    RParen,
    Semi,
    Comma,
    Colon,
    Star,
    Tilde,
    Arrow,
    Assign,
    Plus,
    Minus,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl TokenKind {
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(v) => format!("integer {v}"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            other => format!("{other:?}"),
        }
    }
}

/// A lexing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

/// Tokenise preprocessed source. Comments must already be stripped by the
/// preprocessing stage; `#` directives are skipped to end of line (they
/// survive preprocessing as line markers).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                out.push(Token { kind: TokenKind::LBrace, line });
                i += 1;
            }
            '}' => {
                out.push(Token { kind: TokenKind::RBrace, line });
                i += 1;
            }
            '(' => {
                out.push(Token { kind: TokenKind::LParen, line });
                i += 1;
            }
            ')' => {
                out.push(Token { kind: TokenKind::RParen, line });
                i += 1;
            }
            ';' => {
                out.push(Token { kind: TokenKind::Semi, line });
                i += 1;
            }
            ',' => {
                out.push(Token { kind: TokenKind::Comma, line });
                i += 1;
            }
            ':' => {
                out.push(Token { kind: TokenKind::Colon, line });
                i += 1;
            }
            '*' => {
                out.push(Token { kind: TokenKind::Star, line });
                i += 1;
            }
            '~' => {
                out.push(Token { kind: TokenKind::Tilde, line });
                i += 1;
            }
            '+' => {
                // `++` is not supported; atomic_inc() is the RMW primitive.
                out.push(Token { kind: TokenKind::Plus, line });
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token { kind: TokenKind::Arrow, line });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Minus, line });
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token { kind: TokenKind::EqEq, line });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Assign, line });
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token { kind: TokenKind::NotEq, line });
                    i += 2;
                } else {
                    return Err(LexError { line, message: "stray '!'".into() });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token { kind: TokenKind::Le, line });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Lt, line });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token { kind: TokenKind::Ge, line });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Gt, line });
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v: u64 = text
                    .parse()
                    .map_err(|_| LexError { line, message: format!("bad integer {text}") })?;
                out.push(Token { kind: TokenKind::Int(v), line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let kind = match word {
                    "class" => TokenKind::KwClass,
                    "virtual" => TokenKind::KwVirtual,
                    "int" => TokenKind::KwInt,
                    "void" => TokenKind::KwVoid,
                    "new" => TokenKind::KwNew,
                    "delete" => TokenKind::KwDelete,
                    "if" => TokenKind::KwIf,
                    "else" => TokenKind::KwElse,
                    "while" => TokenKind::KwWhile,
                    "return" => TokenKind::KwReturn,
                    "mutex" => TokenKind::KwMutex,
                    "rwlock" => TokenKind::KwRwLock,
                    "thread" => TokenKind::KwThread,
                    "spawn" => TokenKind::KwSpawn,
                    "join" => TokenKind::KwJoin,
                    "lock" => TokenKind::KwLock,
                    "unlock" => TokenKind::KwUnlock,
                    "rdlock" => TokenKind::KwRdLock,
                    "wrlock" => TokenKind::KwWrLock,
                    "rwunlock" => TokenKind::KwRwUnlock,
                    "atomic_inc" => TokenKind::KwAtomicInc,
                    _ => TokenKind::Ident(word.to_string()),
                };
                out.push(Token { kind, line });
            }
            other => {
                return Err(LexError { line, message: format!("unexpected character {other:?}") })
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        let ks = kinds("class Foo int x");
        assert_eq!(
            ks,
            vec![
                TokenKind::KwClass,
                TokenKind::Ident("Foo".into()),
                TokenKind::KwInt,
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let ks = kinds("-> == != <= >= < > = + - *");
        assert_eq!(
            ks,
            vec![
                TokenKind::Arrow,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Assign,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]); // c and Eof on line 4
    }

    #[test]
    fn skips_hash_directives() {
        let ks = kinds("#include <valgrind/helgrind.h>\nint x");
        assert_eq!(ks, vec![TokenKind::KwInt, TokenKind::Ident("x".into()), TokenKind::Eof]);
    }

    #[test]
    fn integer_literals() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("0")[0], TokenKind::Int(0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("int @ x").is_err());
        assert!(lex("a ! b").is_err());
    }
}
