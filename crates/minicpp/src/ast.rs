//! Abstract syntax tree for mini-C++, plus the pretty-printer used to show
//! annotated source (the paper's Fig 4 presents the transform's output as
//! source text; `render` reproduces that view).

/// A full translation unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Unit {
    pub classes: Vec<ClassDef>,
    pub globals: Vec<GlobalDef>,
    pub functions: Vec<FuncDef>,
}

#[derive(Clone, Debug, PartialEq)]
pub struct ClassDef {
    pub name: String,
    pub base: Option<String>,
    pub fields: Vec<String>,
    /// Declared virtual destructor (all modelled classes are polymorphic;
    /// the flag is kept for printing fidelity).
    pub virtual_dtor: bool,
    pub line: u32,
}

#[derive(Clone, Debug, PartialEq)]
pub enum GlobalKind {
    Int,
    Mutex,
    RwLock,
}

#[derive(Clone, Debug, PartialEq)]
pub struct GlobalDef {
    pub kind: GlobalKind,
    pub name: String,
    pub line: u32,
}

#[derive(Clone, Debug, PartialEq)]
pub enum ParamType {
    Int,
    /// Pointer to a class object.
    Ptr(String),
}

#[derive(Clone, Debug, PartialEq)]
pub struct FuncDef {
    pub name: String,
    pub params: Vec<(ParamType, String)>,
    pub returns_int: bool,
    pub body: Vec<Stmt>,
    pub line: u32,
}

#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `int x = e;`
    LetInt {
        name: String,
        value: Expr,
        line: u32,
    },
    /// `Class* p = e;` (e is `new Class`, a call, or a pointer expression)
    LetPtr {
        class: String,
        name: String,
        value: Expr,
        line: u32,
    },
    /// `thread t = spawn f(args);`
    LetThread {
        name: String,
        func: String,
        args: Vec<Expr>,
        line: u32,
    },
    /// `x = e;` (local or global int)
    Assign {
        name: String,
        value: Expr,
        line: u32,
    },
    /// `p->f = e;`
    FieldAssign {
        base: String,
        field: String,
        value: Expr,
        line: u32,
    },
    /// `p->method();` — a virtual call. Mini-C++ methods are opaque (no
    /// bodies); what matters for race detection is the dispatch itself,
    /// which reads the object's vptr.
    VirtualCall {
        base: String,
        method: String,
        line: u32,
    },
    /// `delete p;` — `annotated` is set by the instrumentation pass.
    Delete {
        ptr: String,
        annotated: bool,
        line: u32,
    },
    /// `lock(m);` / `unlock(m);`
    Lock {
        mutex: String,
        line: u32,
    },
    Unlock {
        mutex: String,
        line: u32,
    },
    /// `rdlock(r);` / `wrlock(r);` / `rwunlock(r);` — POSIX rwlocks,
    /// intercepted only by detectors with `track_rwlocks` (the HWLC
    /// addition).
    RdLock {
        rwlock: String,
        line: u32,
    },
    WrLock {
        rwlock: String,
        line: u32,
    },
    RwUnlock {
        rwlock: String,
        line: u32,
    },
    /// `atomic_inc(x);` — a LOCK-prefixed increment of a global or field.
    AtomicInc {
        target: Expr,
        line: u32,
    },
    /// `join(t);`
    Join {
        thread: String,
        line: u32,
    },
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
        line: u32,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
        line: u32,
    },
    Return {
        value: Option<Expr>,
        line: u32,
    },
    /// Bare call statement.
    Call {
        func: String,
        args: Vec<Expr>,
        line: u32,
    },
}

impl Stmt {
    pub fn line(&self) -> u32 {
        match self {
            Stmt::LetInt { line, .. }
            | Stmt::LetPtr { line, .. }
            | Stmt::LetThread { line, .. }
            | Stmt::Assign { line, .. }
            | Stmt::FieldAssign { line, .. }
            | Stmt::VirtualCall { line, .. }
            | Stmt::Delete { line, .. }
            | Stmt::Lock { line, .. }
            | Stmt::Unlock { line, .. }
            | Stmt::RdLock { line, .. }
            | Stmt::WrLock { line, .. }
            | Stmt::RwUnlock { line, .. }
            | Stmt::AtomicInc { line, .. }
            | Stmt::Join { line, .. }
            | Stmt::If { line, .. }
            | Stmt::While { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::Call { line, .. } => *line,
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Int(u64),
    /// A variable: local, parameter or global.
    Var(String),
    /// `p->f`
    Field {
        base: String,
        field: String,
    },
    /// `new Class`
    New {
        class: String,
    },
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `f(args)` in expression position (int-returning function).
    Call {
        func: String,
        args: Vec<Expr>,
    },
}

// ---------------------------------------------------------------------
// Pretty-printing (annotated-source view, Fig 4).
// ---------------------------------------------------------------------

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn render_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Int(v) => out.push_str(&v.to_string()),
        Expr::Var(n) => out.push_str(n),
        Expr::Field { base, field } => {
            out.push_str(base);
            out.push_str("->");
            out.push_str(field);
        }
        Expr::New { class } => {
            out.push_str("new ");
            out.push_str(class);
        }
        Expr::Bin { op, lhs, rhs } => {
            // Parenthesise nested binary operands: comparisons are
            // non-associative in the grammar, and explicit grouping keeps
            // the printer a fixed point of the parser.
            let child = |e: &Expr, out: &mut String| {
                if matches!(e, Expr::Bin { .. }) {
                    out.push('(');
                    render_expr(e, out);
                    out.push(')');
                } else {
                    render_expr(e, out);
                }
            };
            child(lhs, out);
            out.push_str(match op {
                BinOp::Add => " + ",
                BinOp::Sub => " - ",
                BinOp::Mul => " * ",
                BinOp::Eq => " == ",
                BinOp::Ne => " != ",
                BinOp::Lt => " < ",
                BinOp::Le => " <= ",
                BinOp::Gt => " > ",
                BinOp::Ge => " >= ",
            });
            child(rhs, out);
        }
        Expr::Call { func, args } => {
            out.push_str(func);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(a, out);
            }
            out.push(')');
        }
    }
}

fn render_stmts(stmts: &[Stmt], out: &mut String, depth: usize) {
    for s in stmts {
        indent(out, depth);
        match s {
            Stmt::LetInt { name, value, .. } => {
                out.push_str(&format!("int {name} = "));
                render_expr(value, out);
                out.push_str(";\n");
            }
            Stmt::LetPtr { class, name, value, .. } => {
                out.push_str(&format!("{class}* {name} = "));
                render_expr(value, out);
                out.push_str(";\n");
            }
            Stmt::LetThread { name, func, args, .. } => {
                out.push_str(&format!("thread {name} = spawn {func}("));
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    render_expr(a, out);
                }
                out.push_str(");\n");
            }
            Stmt::Assign { name, value, .. } => {
                out.push_str(&format!("{name} = "));
                render_expr(value, out);
                out.push_str(";\n");
            }
            Stmt::FieldAssign { base, field, value, .. } => {
                out.push_str(&format!("{base}->{field} = "));
                render_expr(value, out);
                out.push_str(";\n");
            }
            Stmt::VirtualCall { base, method, .. } => {
                out.push_str(&format!("{base}->{method}();\n"));
            }
            Stmt::Delete { ptr, annotated, .. } => {
                if *annotated {
                    // The Fig 4 transform.
                    out.push_str(&format!("delete ca_deletor_single({ptr});\n"));
                } else {
                    out.push_str(&format!("delete {ptr};\n"));
                }
            }
            Stmt::Lock { mutex, .. } => out.push_str(&format!("lock({mutex});\n")),
            Stmt::Unlock { mutex, .. } => out.push_str(&format!("unlock({mutex});\n")),
            Stmt::RdLock { rwlock, .. } => out.push_str(&format!("rdlock({rwlock});\n")),
            Stmt::WrLock { rwlock, .. } => out.push_str(&format!("wrlock({rwlock});\n")),
            Stmt::RwUnlock { rwlock, .. } => out.push_str(&format!("rwunlock({rwlock});\n")),
            Stmt::AtomicInc { target, .. } => {
                out.push_str("atomic_inc(");
                render_expr(target, out);
                out.push_str(");\n");
            }
            Stmt::Join { thread, .. } => out.push_str(&format!("join({thread});\n")),
            Stmt::If { cond, then_branch, else_branch, .. } => {
                out.push_str("if (");
                render_expr(cond, out);
                out.push_str(") {\n");
                render_stmts(then_branch, out, depth + 1);
                indent(out, depth);
                if else_branch.is_empty() {
                    out.push_str("}\n");
                } else {
                    out.push_str("} else {\n");
                    render_stmts(else_branch, out, depth + 1);
                    indent(out, depth);
                    out.push_str("}\n");
                }
            }
            Stmt::While { cond, body, .. } => {
                out.push_str("while (");
                render_expr(cond, out);
                out.push_str(") {\n");
                render_stmts(body, out, depth + 1);
                indent(out, depth);
                out.push_str("}\n");
            }
            Stmt::Return { value, .. } => {
                out.push_str("return");
                if let Some(v) = value {
                    out.push(' ');
                    render_expr(v, out);
                }
                out.push_str(";\n");
            }
            Stmt::Call { func, args, .. } => {
                out.push_str(func);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    render_expr(a, out);
                }
                out.push_str(");\n");
            }
        }
    }
}

/// Does the unit contain any annotated delete?
fn has_annotation(unit: &Unit) -> bool {
    fn in_stmts(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Delete { annotated, .. } => *annotated,
            Stmt::If { then_branch, else_branch, .. } => {
                in_stmts(then_branch) || in_stmts(else_branch)
            }
            Stmt::While { body, .. } => in_stmts(body),
            _ => false,
        })
    }
    unit.functions.iter().any(|f| in_stmts(&f.body))
}

/// Render a unit back to source. Annotated units get the Fig 4 prologue:
/// the helgrind header include and the `ca_deletor_single` helper.
pub fn render(unit: &Unit) -> String {
    let mut out = String::new();
    if has_annotation(unit) {
        out.push_str("#include <valgrind/helgrind.h>\n");
        out.push_str("namespace {\n");
        out.push_str("template <class Type>\n");
        out.push_str("inline Type* ca_deletor_single(Type* object) {\n");
        out.push_str("    VALGRIND_HG_DESTRUCT(object, sizeof(Type));\n");
        out.push_str("    return object;\n");
        out.push_str("}\n");
        out.push_str("}\n\n");
    }
    for c in &unit.classes {
        match &c.base {
            Some(b) => out.push_str(&format!("class {} : {} {{\n", c.name, b)),
            None => out.push_str(&format!("class {} {{\n", c.name)),
        }
        for f in &c.fields {
            out.push_str(&format!("    int {f};\n"));
        }
        if c.virtual_dtor {
            out.push_str(&format!("    virtual ~{}() {{}}\n", c.name));
        }
        out.push_str("};\n\n");
    }
    for g in &unit.globals {
        match g.kind {
            GlobalKind::Int => out.push_str(&format!("int {};\n", g.name)),
            GlobalKind::Mutex => out.push_str(&format!("mutex {};\n", g.name)),
            GlobalKind::RwLock => out.push_str(&format!("rwlock {};\n", g.name)),
        }
    }
    if !unit.globals.is_empty() {
        out.push('\n');
    }
    for f in &unit.functions {
        let ret = if f.returns_int { "int" } else { "void" };
        out.push_str(&format!("{ret} {}(", f.name));
        for (i, (ty, name)) in f.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match ty {
                ParamType::Int => out.push_str(&format!("int {name}")),
                ParamType::Ptr(c) => out.push_str(&format!("{c}* {name}")),
            }
        }
        out.push_str(") {\n");
        render_stmts(&f.body, &mut out, 1);
        out.push_str("}\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_plain_delete() {
        let unit = Unit {
            classes: vec![],
            globals: vec![],
            functions: vec![FuncDef {
                name: "g".into(),
                params: vec![(ParamType::Ptr("Msg".into()), "p".into())],
                returns_int: false,
                body: vec![Stmt::Delete { ptr: "p".into(), annotated: false, line: 2 }],
                line: 1,
            }],
        };
        let src = render(&unit);
        assert!(src.contains("delete p;"));
        assert!(!src.contains("ca_deletor_single"));
        assert!(!src.contains("helgrind.h"));
    }

    #[test]
    fn render_annotated_delete_matches_fig4() {
        let unit = Unit {
            classes: vec![],
            globals: vec![],
            functions: vec![FuncDef {
                name: "g".into(),
                params: vec![(ParamType::Ptr("Msg".into()), "p".into())],
                returns_int: false,
                body: vec![Stmt::Delete { ptr: "p".into(), annotated: true, line: 2 }],
                line: 1,
            }],
        };
        let src = render(&unit);
        assert!(src.contains("#include <valgrind/helgrind.h>"));
        assert!(src.contains("VALGRIND_HG_DESTRUCT(object, sizeof(Type));"));
        assert!(src.contains("delete ca_deletor_single(p);"));
    }

    #[test]
    fn render_class_with_base() {
        let unit = Unit {
            classes: vec![ClassDef {
                name: "Req".into(),
                base: Some("Msg".into()),
                fields: vec!["len".into()],
                virtual_dtor: true,
                line: 1,
            }],
            globals: vec![],
            functions: vec![],
        };
        let src = render(&unit);
        assert!(src.contains("class Req : Msg {"));
        assert!(src.contains("virtual ~Req() {}"));
        assert!(src.contains("int len;"));
    }

    #[test]
    fn stmt_line_extraction() {
        let s = Stmt::Lock { mutex: "m".into(), line: 17 };
        assert_eq!(s.line(), 17);
    }
}
