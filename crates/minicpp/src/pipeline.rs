//! The three-stage instrumentation-and-build pipeline of Fig 3:
//!
//! ```text
//! source ──(1) preprocess──> tokens-ready text
//!        ──(2) parse + annotate──> annotated source (per-unit, optional)
//!        ──(3) compile──> guest binary (vexec IR) for execution on the VM
//! ```
//!
//! "This can be done in a shell script that replaces the compiler call
//! during the build process, making the instrumentation transparent to the
//! build tools and the programmer" (§3.3). Units whose source is not
//! available (`instrument = false`) skip stage 2, exactly like third-party
//! code in the paper — their deletes stay unannotated.

use crate::annotate::annotate_unit;
use crate::ast::{render, Unit};
use crate::codegen::{compile, SemaError};
use crate::parser::{parse, ParseError};
use vexec::ir::Program;

/// One translation unit entering the pipeline.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// File name used in source locations and diagnostics.
    pub name: String,
    pub text: String,
    /// Run the annotation stage on this unit? (False = "source code not
    /// available"; it is still compiled, just not instrumented.)
    pub instrument: bool,
}

impl SourceFile {
    pub fn new(name: &str, text: &str) -> Self {
        SourceFile { name: name.to_string(), text: text.to_string(), instrument: true }
    }

    pub fn without_instrumentation(name: &str, text: &str) -> Self {
        SourceFile { name: name.to_string(), text: text.to_string(), instrument: false }
    }
}

/// Pipeline failure, tagged with the unit it occurred in.
#[derive(Clone, Debug)]
pub enum CompileError {
    Parse { unit: String, error: ParseError },
    Sema { error: SemaError },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse { unit, error } => write!(f, "{unit}: {error}"),
            CompileError::Sema { error } => write!(f, "{error}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Output of a pipeline run.
#[derive(Debug)]
pub struct PipelineOutput {
    /// The "binary": an executable guest program.
    pub program: Program,
    /// Stage-2 artefacts: the annotated source of each instrumented unit
    /// (what the build would hand to the real compiler).
    pub annotated_sources: Vec<(String, String)>,
    /// Total number of delete sites annotated.
    pub deletes_annotated: usize,
    /// The parsed (and, where instrumented, annotated) units, kept so the
    /// static passes in [`crate::analysis`] can run over exactly what was
    /// compiled.
    pub units: Vec<(Unit, String)>,
}

/// Stage 1: preprocessing. The real pipeline runs `gcc -E`; here we strip
/// `//` and `/* */` comments (string literals do not exist in mini-C++) and
/// leave `#` lines for the lexer to skip.
pub fn preprocess(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            i += 2;
            loop {
                if i >= bytes.len() {
                    break; // unterminated comment: swallow to EOF
                }
                if i + 1 < bytes.len() && bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                // Preserve newlines so line numbers stay stable.
                if bytes[i] == b'\n' {
                    out.push('\n');
                }
                i += 1;
            }
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// Run the full pipeline over a set of translation units.
pub fn run_pipeline(files: &[SourceFile]) -> Result<PipelineOutput, CompileError> {
    let mut units: Vec<(Unit, String)> = Vec::new();
    let mut annotated_sources = Vec::new();
    let mut deletes_annotated = 0;
    for f in files {
        // Stage 1.
        let pre = preprocess(&f.text);
        // Stage 2.
        let mut unit =
            parse(&pre).map_err(|error| CompileError::Parse { unit: f.name.clone(), error })?;
        if f.instrument {
            let n = annotate_unit(&mut unit);
            deletes_annotated += n;
            if n > 0 {
                annotated_sources.push((f.name.clone(), render(&unit)));
            }
        }
        units.push((unit, f.name.clone()));
    }
    // Stage 3.
    let program = compile(&units).map_err(|error| CompileError::Sema { error })?;
    Ok(PipelineOutput { program, annotated_sources, deletes_annotated, units })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::sched::RoundRobin;
    use vexec::tool::RecordingTool;
    use vexec::vm::run_program;
    use vexec::{ClientEv, Event};

    const APP: &str = "
// The application: a message processed by a worker thread.
class Base { int a; virtual ~Base() {} };
class Msg : Base { int len; ~Msg() {} };
mutex g_m;
int g_done;

void worker(Msg* m) {
    int v = m->len; /* read the payload */
    delete m;
    lock(g_m);
    g_done = 1;
    unlock(g_m);
}

void main() {
    Msg* m = new Msg;
    m->len = 5;
    thread t = spawn worker(m);
    join(t);
}
";

    #[test]
    fn preprocess_strips_comments_preserving_lines() {
        let out = preprocess("a // x\nb /* c\nd */ e");
        assert_eq!(out, "a \nb \n e");
    }

    #[test]
    fn full_pipeline_annotates_and_runs() {
        let out = run_pipeline(&[SourceFile::new("app.cpp", APP)]).unwrap();
        assert_eq!(out.deletes_annotated, 1);
        assert_eq!(out.annotated_sources.len(), 1);
        assert!(out.annotated_sources[0].1.contains("ca_deletor_single"));

        let mut rec = RecordingTool::new();
        run_program(&out.program, &mut rec, &mut RoundRobin::new()).expect_clean();
        let destructs = rec
            .events
            .iter()
            .filter(|e| matches!(e, Event::Client { req: ClientEv::HgDestruct { .. }, .. }))
            .count();
        assert_eq!(destructs, 1, "the annotation fires at runtime");
    }

    #[test]
    fn uninstrumented_unit_produces_no_client_requests() {
        let out =
            run_pipeline(&[SourceFile::without_instrumentation("thirdparty.cpp", APP)]).unwrap();
        assert_eq!(out.deletes_annotated, 0);
        assert!(out.annotated_sources.is_empty());
        let mut rec = RecordingTool::new();
        run_program(&out.program, &mut rec, &mut RoundRobin::new()).expect_clean();
        assert!(!rec
            .events
            .iter()
            .any(|e| matches!(e, Event::Client { req: ClientEv::HgDestruct { .. }, .. })));
    }

    #[test]
    fn mixed_units_annotate_only_available_sources() {
        let lib = "
class Packet { int tag; virtual ~Packet() {} };
void lib_free(Packet* p) { delete p; }
";
        let app = "
void main() {
    Packet* p = new Packet;
    p->tag = 3;
    lib_free(p);
    Packet* q = new Packet;
    delete q;
}
";
        let out = run_pipeline(&[
            SourceFile::without_instrumentation("lib.cpp", lib),
            SourceFile::new("app.cpp", app),
        ])
        .unwrap();
        assert_eq!(out.deletes_annotated, 1, "only the app's delete is annotated");
        let mut rec = RecordingTool::new();
        run_program(&out.program, &mut rec, &mut RoundRobin::new()).expect_clean();
        let destructs = rec
            .events
            .iter()
            .filter(|e| matches!(e, Event::Client { req: ClientEv::HgDestruct { .. }, .. }))
            .count();
        assert_eq!(destructs, 1);
    }

    #[test]
    fn parse_errors_name_the_unit() {
        let err = run_pipeline(&[SourceFile::new("broken.cpp", "void main( {")]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("broken.cpp"), "{msg}");
    }
}
