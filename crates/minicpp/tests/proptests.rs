//! Property-based tests for the mini-C++ front end: the pretty-printer and
//! parser are mutual inverses over generated ASTs, the annotation pass is
//! idempotent and annotation-count-correct, and generated programs always
//! compile and execute.

use minicpp::ast::*;
use minicpp::pipeline::{preprocess, run_pipeline, SourceFile};
use minicpp::{annotate_unit, compile, parse, render};
use proptest::prelude::*;
use vexec::sched::SeededRandom;
use vexec::tool::CountingTool;
use vexec::vm::run_program;

fn ident_strategy(prefix: &'static str) -> impl Strategy<Value = String> {
    (0u32..30).prop_map(move |i| format!("{prefix}{i}"))
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf =
        prop_oneof![(0u64..1000).prop_map(Expr::Int), ident_strategy("x").prop_map(Expr::Var),];
    leaf.prop_recursive(3, 12, 3, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Eq),
                Just(BinOp::Lt),
            ],
        )
            .prop_map(|(lhs, rhs, op)| Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (ident_strategy("x"), expr_strategy()).prop_map(|(name, value)| Stmt::Assign {
            name,
            value,
            line: 1
        }),
        ident_strategy("p").prop_map(|ptr| Stmt::Delete { ptr, annotated: false, line: 1 }),
        ident_strategy("m").prop_map(|mutex| Stmt::Lock { mutex, line: 1 }),
        ident_strategy("m").prop_map(|mutex| Stmt::Unlock { mutex, line: 1 }),
        (ident_strategy("p"), ident_strategy("f"), expr_strategy())
            .prop_map(|(base, field, value)| Stmt::FieldAssign { base, field, value, line: 1 }),
        (ident_strategy("p"), ident_strategy("meth"))
            .prop_map(|(base, method)| Stmt::VirtualCall { base, method, line: 1 }),
        expr_strategy().prop_map(|value| Stmt::Return { value: Some(value), line: 1 }),
    ];
    leaf.prop_recursive(2, 10, 4, |inner| {
        prop_oneof![
            (expr_strategy(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(cond, body)| Stmt::While { cond, body, line: 1 }),
            (
                expr_strategy(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner, 0..3)
            )
                .prop_map(|(cond, then_branch, else_branch)| Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    line: 1
                }),
        ]
    })
}

fn unit_strategy() -> impl Strategy<Value = Unit> {
    (
        prop::collection::vec(
            (ident_strategy("f"), prop::collection::vec(stmt_strategy(), 0..6)),
            1..4,
        ),
        prop::collection::vec(ident_strategy("g"), 0..3),
    )
        .prop_map(|(funcs, globals)| Unit {
            classes: vec![],
            globals: globals
                .into_iter()
                .enumerate()
                .map(|(i, name)| GlobalDef {
                    kind: if i % 2 == 0 { GlobalKind::Int } else { GlobalKind::Mutex },
                    name,
                    line: 1,
                })
                .collect(),
            functions: funcs
                .into_iter()
                .enumerate()
                .map(|(i, (name, body))| FuncDef {
                    name: format!("{name}_{i}"),
                    params: vec![
                        (ParamType::Int, "a".into()),
                        (ParamType::Ptr("C".into()), "p".into()),
                    ],
                    returns_int: i % 2 == 0,
                    body,
                    line: 1,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// render ∘ parse ∘ render == render (the printer emits a fixed point
    /// of the parser).
    #[test]
    fn render_parse_roundtrip(unit in unit_strategy()) {
        let printed = render(&unit);
        let reparsed = parse(&printed)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{printed}")))?;
        prop_assert_eq!(render(&reparsed), printed);
    }

    /// Annotation marks exactly the delete statements, once.
    #[test]
    fn annotation_counts_deletes(unit in unit_strategy()) {
        fn count_deletes(stmts: &[Stmt]) -> usize {
            stmts.iter().map(|s| match s {
                Stmt::Delete { .. } => 1,
                Stmt::If { then_branch, else_branch, .. } => {
                    count_deletes(then_branch) + count_deletes(else_branch)
                }
                Stmt::While { body, .. } => count_deletes(body),
                _ => 0,
            }).sum()
        }
        let mut unit = unit;
        let expected: usize = unit.functions.iter().map(|f| count_deletes(&f.body)).sum();
        prop_assert_eq!(annotate_unit(&mut unit), expected);
        prop_assert_eq!(annotate_unit(&mut unit), 0, "idempotent");
    }

    /// Preprocessing is idempotent and preserves line counts.
    #[test]
    fn preprocess_idempotent(src in "[a-z{}();=\\n /*]*") {
        let once = preprocess(&src);
        let twice = preprocess(&once);
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(src.matches('\n').count(), once.matches('\n').count());
    }

    /// Generated *well-formed* programs always compile and run cleanly.
    #[test]
    fn generated_counter_programs_compile_and_run(
        n_workers in 1usize..4,
        increments in 1u64..10,
        seed in any::<u64>(),
    ) {
        let mut src = String::from("mutex g_m;\nint g_count;\n");
        src.push_str(&format!(
            "void worker() {{ int i = 0; while (i < {increments}) {{ lock(g_m); g_count = g_count + 1; unlock(g_m); i = i + 1; }} }}\n"
        ));
        src.push_str("void main() {\n");
        for i in 0..n_workers {
            src.push_str(&format!("    thread t{i} = spawn worker();\n"));
        }
        for i in 0..n_workers {
            src.push_str(&format!("    join(t{i});\n"));
        }
        src.push_str("}\n");

        let out = run_pipeline(&[SourceFile::new("gen.cpp", &src)])
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        let mut tool = CountingTool::new();
        let r = run_program(&out.program, &mut tool, &mut SeededRandom::new(seed));
        prop_assert!(r.termination.is_clean(), "{:?}", r.termination);
        prop_assert_eq!(tool.count("acquire"), n_workers as u64 * increments);
    }

    /// Parse never panics on arbitrary input (errors are values).
    #[test]
    fn parser_total_on_garbage(src in "\\PC*") {
        let _ = parse(&src);
    }

    /// Compile never panics on arbitrary parseable units.
    #[test]
    fn compile_total_on_generated_units(unit in unit_strategy()) {
        let _ = compile(&[(unit, "gen.cpp".to_string())]);
    }
}
