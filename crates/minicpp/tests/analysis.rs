//! Integration tests for `minicpp::analysis`: golden expectations on the
//! shipped sample programs plus the soundness property that ties the
//! static side to the dynamic one — on loop-free spawn/join programs the
//! must-held lockset computed statically for an access point is a subset
//! of the lockset any real execution actually holds there.

use helgrind_core::explore::explore_schedules;
use helgrind_core::{DetectorConfig, ReportKind};
use minicpp::analysis::{analyze, analyze_files};
use minicpp::ast::Stmt;
use minicpp::pipeline::{run_pipeline, SourceFile};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use vexec::event::Event;
use vexec::sched::RoundRobin;
use vexec::tool::Tool;
use vexec::vm::{run_program, VmView};

fn sample(name: &str) -> String {
    // Integration tests run with CWD = the minicpp crate root.
    std::fs::read_to_string(format!("../../examples/programs/{name}"))
        .unwrap_or_else(|e| panic!("read {name}: {e}"))
}

// -------------------------------------------------------------------
// Golden expectations on the shipped fixtures.
// -------------------------------------------------------------------

#[test]
fn session_sample_yields_exactly_the_unlocked_counter_race() {
    let src = sample("session.mcpp");
    let res = analyze_files(&[SourceFile::new("session.mcpp", &src)]).expect("compiles");
    let kinds: Vec<(String, u32)> =
        res.reports.iter().map(|r| (r.kind.name().to_string(), r.line)).collect();
    assert_eq!(
        kinds,
        vec![("Race (read)".to_string(), 20), ("Race (write)".to_string(), 20)],
        "only the post-unlock g_racy_hits update races:\n{:#?}",
        res.reports
    );
    // Every mutex-guarded access carries its lock in the must-set.
    let held = res.must_locksets.get(&("use_session".to_string(), 16));
    assert_eq!(held, Some(&BTreeSet::from(["g_m".to_string()])), "{:?}", res.must_locksets);
}

#[test]
fn ab_ba_sample_yields_the_cycle_at_both_edges_and_no_race() {
    let src = sample("ab_ba.mcpp");
    let res = analyze_files(&[SourceFile::new("ab_ba.mcpp", &src)]).expect("compiles");
    assert_eq!(res.reports.len(), 2, "{:#?}", res.reports);
    for r in &res.reports {
        assert_eq!(r.kind.name(), "LockOrder");
        assert!(r.details.contains("lock order cycle"), "{}", r.details);
    }
    let lines: BTreeSet<u32> = res.reports.iter().map(|r| r.line).collect();
    assert_eq!(lines, BTreeSet::from([10, 18]));
}

#[test]
fn clean_sample_is_silent() {
    let src = sample("clean_locked.mcpp");
    let res = analyze_files(&[SourceFile::new("clean_locked.mcpp", &src)]).expect("compiles");
    assert!(res.reports.is_empty(), "{:#?}", res.reports);
}

#[test]
fn lints_fire_on_discipline_violations() {
    let src = "
mutex g_m;
int g_n;

void double_lock() {
    lock(g_m);
    lock(g_m);
    unlock(g_m);
    unlock(g_m);
}

void bad_unlock() {
    unlock(g_m);
}

void leaky(int n) {
    lock(g_m);
    if (n == 0) {
        unlock(g_m);
        return;
    }
    g_n = 1;
}

void main() {
    double_lock();
    bad_unlock();
    leaky(1);
    unlock(g_m);
}
";
    let res = analyze_files(&[SourceFile::new("lints.cpp", src)]).expect("compiles");
    let kinds: BTreeSet<&str> = res.reports.iter().map(|r| r.kind.name()).collect();
    assert!(kinds.contains("DoubleLock"), "{kinds:?}");
    assert!(kinds.contains("UnlockWithoutLock"), "{kinds:?}");
    assert!(kinds.contains("LockLeak"), "{kinds:?}");
}

#[test]
fn delete_while_locked_is_flagged() {
    let src = "
mutex g_m;
class Obj { int x; };

void drop_under_lock(Obj* p) {
    lock(g_m);
    delete p;
    unlock(g_m);
}

void main() {
    Obj* p = new Obj;
    drop_under_lock(p);
}
";
    let res = analyze_files(&[SourceFile::new("dwl.cpp", src)]).expect("compiles");
    assert!(res.reports.iter().any(|r| r.kind.name() == "DeleteWhileLocked"), "{:#?}", res.reports);
}

#[test]
fn escaping_ref_sample_flags_the_returned_reference() {
    let src = sample("escaping_ref.mcpp");
    let res = analyze_files(&[SourceFile::new("escaping_ref.mcpp", &src)]).expect("compiles");
    let kinds: Vec<(String, u32)> =
        res.reports.iter().map(|r| (r.kind.name().to_string(), r.line)).collect();
    assert_eq!(
        kinds,
        vec![
            ("EscapingGuardedRef".to_string(), 16),
            ("Race (read)".to_string(), 21),
            ("Race (write)".to_string(), 21),
            ("Race (read)".to_string(), 27),
            ("Race (write)".to_string(), 27),
        ],
        "{:#?}",
        res.reports
    );
    // The structured finding carries the full escape story: guard, route,
    // release window and the post-release use the directed sweep aims at.
    assert_eq!(res.escapes.len(), 1, "{:#?}", res.escapes);
    let e = &res.escapes[0];
    assert_eq!((e.func.as_str(), e.line), ("getDomainData", 16));
    assert_eq!(e.route, "return value");
    assert_eq!(e.locks, BTreeSet::from(["g_registry_m".to_string()]));
    assert_eq!(e.source, "g_domain_slot");
    let rel: Vec<(String, u32)> =
        e.release_sites.iter().map(|s| (s.func.clone(), s.line)).collect();
    assert_eq!(rel, vec![("getDomainData".to_string(), 15)], "{:#?}", e.release_sites);
    let uses: Vec<(String, u32)> = e.use_sites.iter().map(|s| (s.func.clone(), s.line)).collect();
    assert_eq!(uses, vec![("updateDomain".to_string(), 21)], "{:#?}", e.use_sites);
}

#[test]
fn copy_out_sample_is_silent() {
    // The safe twin: the getter copies a value out of the critical section
    // and the copy is never dereferenced — no escape, no race, no lint.
    let src = sample("copy_out.mcpp");
    let res = analyze_files(&[SourceFile::new("copy_out.mcpp", &src)]).expect("compiles");
    assert!(res.reports.is_empty(), "{:#?}", res.reports);
    assert!(res.escapes.is_empty(), "{:#?}", res.escapes);
}

// -------------------------------------------------------------------
// Soundness property: static must-locksets under-approximate what any
// real execution holds. Generated programs are loop-free spawn/join
// shapes whose workers interleave bare global accesses with depth-1
// lock regions, so every run terminates and never deadlocks.
// -------------------------------------------------------------------

const LOCKS: [&str; 3] = ["g_l0", "g_l1", "g_l2"];
const GLOBALS: [&str; 2] = ["g_x", "g_y"];

/// One worker-body element: a bare access, or a single-lock region.
#[derive(Clone, Debug)]
enum Item {
    Access(usize),
    Region { lock: usize, accesses: Vec<usize> },
}

fn item_strategy() -> impl Strategy<Value = Item> {
    prop_oneof![
        (0..GLOBALS.len()).prop_map(Item::Access),
        ((0..LOCKS.len()), prop::collection::vec(0..GLOBALS.len(), 1..=3))
            .prop_map(|(lock, accesses)| Item::Region { lock, accesses }),
    ]
}

fn workers_strategy() -> impl Strategy<Value = Vec<Vec<Item>>> {
    prop::collection::vec(prop::collection::vec(item_strategy(), 0..=4), 1..=3)
}

fn render_program(workers: &[Vec<Item>]) -> String {
    let mut src = String::new();
    for l in LOCKS {
        src.push_str(&format!("mutex {l};\n"));
    }
    for g in GLOBALS {
        src.push_str(&format!("int {g};\n"));
    }
    for (i, body) in workers.iter().enumerate() {
        src.push_str(&format!("void worker{i}() {{\n"));
        for item in body {
            match item {
                Item::Access(g) => {
                    let g = GLOBALS[*g];
                    src.push_str(&format!("    {g} = {g} + 1;\n"));
                }
                Item::Region { lock, accesses } => {
                    let l = LOCKS[*lock];
                    src.push_str(&format!("    lock({l});\n"));
                    for g in accesses {
                        let g = GLOBALS[*g];
                        src.push_str(&format!("    {g} = {g} + 1;\n"));
                    }
                    src.push_str(&format!("    unlock({l});\n"));
                }
            }
        }
        src.push_str("}\n");
    }
    src.push_str("void main() {\n");
    for i in 0..workers.len() {
        src.push_str(&format!("    thread t{i} = spawn worker{i}();\n"));
    }
    for i in 0..workers.len() {
        src.push_str(&format!("    join(t{i});\n"));
    }
    src.push_str("}\n");
    src
}

/// Map each lock/unlock source line to its lock's name, by walking the AST
/// that was actually compiled.
fn lock_lines(units: &[(minicpp::ast::Unit, String)]) -> BTreeMap<u32, String> {
    fn walk(stmts: &[Stmt], map: &mut BTreeMap<u32, String>) {
        for s in stmts {
            match s {
                Stmt::Lock { mutex, line } | Stmt::Unlock { mutex, line } => {
                    map.insert(*line, mutex.clone());
                }
                Stmt::RdLock { rwlock, line }
                | Stmt::WrLock { rwlock, line }
                | Stmt::RwUnlock { rwlock, line } => {
                    map.insert(*line, rwlock.clone());
                }
                Stmt::If { then_branch, else_branch, .. } => {
                    walk(then_branch, map);
                    walk(else_branch, map);
                }
                Stmt::While { body, .. } => walk(body, map),
                _ => {}
            }
        }
    }
    let mut map = BTreeMap::new();
    for (unit, _) in units {
        for f in &unit.functions {
            walk(&f.body, &mut map);
        }
    }
    map
}

/// Records, for every data access an execution performs, the set of lock
/// names the accessing thread held at that moment.
struct LockObserver {
    lines: BTreeMap<u32, String>,
    held: BTreeMap<u32, BTreeSet<String>>,
    observed: Vec<(String, u32, BTreeSet<String>)>,
}

impl Tool for LockObserver {
    fn on_event(&mut self, ev: &Event, vm: &VmView<'_>) {
        match ev {
            Event::Acquire { tid, loc, .. } => {
                if let Some(name) = self.lines.get(&loc.line) {
                    self.held.entry(tid.0).or_default().insert(name.clone());
                }
            }
            Event::Release { tid, loc, .. } => {
                if let Some(name) = self.lines.get(&loc.line) {
                    self.held.entry(tid.0).or_default().remove(name);
                }
            }
            Event::Access { tid, loc, .. } => {
                let held = self.held.get(&tid.0).cloned().unwrap_or_default();
                self.observed.push((vm.resolve(loc.func).to_string(), loc.line, held));
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn static_must_lockset_is_subset_of_any_dynamic_lockset(
        workers in workers_strategy(),
    ) {
        let src = render_program(&workers);
        let out = run_pipeline(&[SourceFile::new("gen.cpp", &src)])
            .unwrap_or_else(|e| panic!("generated program must compile: {e:?}\n{src}"));

        let mut obs = LockObserver {
            lines: lock_lines(&out.units),
            held: BTreeMap::new(),
            observed: Vec::new(),
        };
        let result = run_program(&out.program, &mut obs, &mut RoundRobin::new());
        prop_assert!(
            matches!(result.termination, vexec::vm::Termination::AllExited),
            "loop-free depth-1 programs always run to completion: {:?}\n{src}",
            result.termination
        );

        let stat = analyze(&out.units);
        for (func, line, held) in &obs.observed {
            let Some(must) = stat.must_locksets.get(&(func.clone(), *line)) else {
                continue;
            };
            prop_assert!(
                must.is_subset(held),
                "static must-set {must:?} at {func}:{line} not within \
                 dynamically held {held:?}\n{src}"
            );
        }
    }
}

// -------------------------------------------------------------------
// Escape soundness property, mirroring the lockset subset one: on the
// modeled escape routes (here: guarded reference returned by a getter),
// every dynamically confirmed race at a post-release dereference of the
// escaped reference is also reported statically — the static side has no
// false negatives the dynamic side can expose.
// -------------------------------------------------------------------

/// A Fig 7 family member: one guarded getter, a locked writer, and 1–3
/// user threads that each either dereference the returned reference after
/// the lock is gone (the bug) or merely copy it into a local (safe).
fn render_escape_program(users: &[bool]) -> (String, Vec<u32>) {
    let mut lines: Vec<String> = vec![
        "class Obj { int hits; virtual ~Obj() {} };".into(),
        "mutex g_m;".into(),
        "int g_slot;".into(),
        "int getter() {".into(),
        "    lock(g_m);".into(),
        "    int h = g_slot;".into(),
        "    unlock(g_m);".into(),
        "    return h;".into(),
        "}".into(),
    ];
    let mut deref_lines: Vec<u32> = Vec::new();
    for (i, &derefs) in users.iter().enumerate() {
        lines.push(format!("void user{i}() {{"));
        lines.push("    Obj* p = getter();".into());
        if derefs {
            lines.push("    p->hits = p->hits + 1;".into());
            deref_lines.push(lines.len() as u32);
        } else {
            lines.push("    int s = p;".into());
        }
        lines.push("}".into());
    }
    lines.push("void writer() {".into());
    lines.push("    lock(g_m);".into());
    lines.push("    Obj* q = g_slot;".into());
    lines.push("    q->hits = q->hits + 2;".into());
    lines.push("    unlock(g_m);".into());
    lines.push("}".into());
    lines.push("void main() {".into());
    lines.push("    Obj* d = new Obj;".into());
    lines.push("    d->hits = 0;".into());
    lines.push("    g_slot = d;".into());
    for i in 0..users.len() {
        lines.push(format!("    thread t{i} = spawn user{i}();"));
    }
    lines.push("    thread w = spawn writer();".into());
    for i in 0..users.len() {
        lines.push(format!("    join(t{i});"));
    }
    lines.push("    join(w);".into());
    lines.push("}".into());
    (lines.join("\n") + "\n", deref_lines)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dynamically_confirmed_escape_races_are_reported_statically(
        users in prop::collection::vec(any::<bool>(), 1..=3),
        seed in 0u64..(1u64 << 16),
    ) {
        let (src, deref_lines) = render_escape_program(&users);
        let out = run_pipeline(&[SourceFile::new("esc_gen.cpp", &src)])
            .unwrap_or_else(|e| panic!("generated program must compile: {e:?}\n{src}"));
        let stat = analyze(&out.units);
        let use_lines: BTreeSet<u32> =
            stat.escapes.iter().flat_map(|e| e.use_sites.iter().map(|u| u.line)).collect();

        // Static side alone: every post-release dereference of the escaped
        // reference is a recorded use site of some escape finding...
        for l in &deref_lines {
            prop_assert!(
                use_lines.contains(l),
                "deref at line {l} missing from escape use sites {use_lines:?}\n{src}"
            );
        }
        // ...and pure copy-outs never produce an escape finding.
        if deref_lines.is_empty() {
            prop_assert!(stat.escapes.is_empty(), "{:#?}\n{src}", stat.escapes);
        }

        // Dynamic side: any race an explored schedule confirms at one of
        // those dereference sites is covered by a static escape use site —
        // the no-false-negative property the cross-check labels rely on.
        let summary = explore_schedules(&out.program, DetectorConfig::hwlc_dr(), 8, seed);
        for hit in &summary.locations {
            if matches!(hit.report.kind, ReportKind::RaceRead | ReportKind::RaceWrite)
                && deref_lines.contains(&hit.report.line)
            {
                prop_assert!(
                    use_lines.contains(&hit.report.line),
                    "dynamic race at line {} not covered statically ({use_lines:?})\n{src}",
                    hit.report.line
                );
            }
        }
    }
}
