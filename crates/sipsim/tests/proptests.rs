//! Property-based tests for the proxy builder and the evaluation harness:
//! for *any* site inventory (not just the eight calibrated presets), the
//! detectors must attribute warnings exactly — every bus-lock site warns
//! under Original only, every destructor site under Original and HWLC,
//! every real site everywhere, and nothing else warns at all.
//!
//! This is the load-bearing check behind the Fig 5/6 reproduction: the
//! counts are not painted on; they fall out of the algorithms for any
//! inventory.

use helgrind_core::DetectorConfig;
use proptest::prelude::*;
use sipsim::proxy::{build_proxy, Dispatch, ProxyConfig};
use sipsim::testcases::run_case;
use sipsim::workload::{generate, ScenarioSpec};

fn cfg_strategy() -> impl Strategy<Value = ProxyConfig> {
    (0usize..12, 0usize..12, 0usize..12, 2usize..4, 1usize..8).prop_map(
        |(bus, dtor, real, touches, per_handler)| ProxyConfig {
            bus_sites: bus,
            dtor_sites: dtor,
            real_sites: real,
            touches_per_site: touches,
            sites_per_handler: per_handler,
            dispatch: Dispatch::ThreadPerRequest,
            annotate_deletes: true,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The warning matrix holds for arbitrary inventories.
    #[test]
    fn warning_matrix_holds_for_any_inventory(cfg in cfg_strategy()) {
        let built = build_proxy(&cfg);

        let original = run_case(&built, DetectorConfig::original());
        prop_assert_eq!(original.unexpected, 0, "original: {:?}", original);
        prop_assert_eq!(original.bus_fp, cfg.bus_sites);
        prop_assert_eq!(original.dtor_fp, cfg.dtor_sites);
        prop_assert_eq!(original.real, cfg.real_sites);
        prop_assert_eq!(original.handoff_fp, 0, "TPR never shows the pool FP");

        let hwlc = run_case(&built, DetectorConfig::hwlc());
        prop_assert_eq!(hwlc.unexpected, 0);
        prop_assert_eq!(hwlc.bus_fp, 0, "HWLC removes every bus-lock FP");
        prop_assert_eq!(hwlc.dtor_fp, cfg.dtor_sites);
        prop_assert_eq!(hwlc.real, cfg.real_sites);

        let hwlc_dr = run_case(&built, DetectorConfig::hwlc_dr());
        prop_assert_eq!(hwlc_dr.unexpected, 0);
        prop_assert_eq!(hwlc_dr.bus_fp, 0);
        prop_assert_eq!(hwlc_dr.dtor_fp, 0, "DR removes every destructor FP");
        prop_assert_eq!(hwlc_dr.real, cfg.real_sites, "no true positive is ever lost");
    }

    /// More concurrent touches per site never change the location counts
    /// (locations deduplicate) — only the amount of traffic.
    #[test]
    fn counts_invariant_under_extra_touches(
        bus in 0usize..6, dtor in 0usize..6, real in 0usize..6,
    ) {
        let mk = |touches| ProxyConfig {
            bus_sites: bus,
            dtor_sites: dtor,
            real_sites: real,
            touches_per_site: touches,
            sites_per_handler: 5,
            dispatch: Dispatch::ThreadPerRequest,
            annotate_deletes: true,
        };
        let a = run_case(&build_proxy(&mk(2)), DetectorConfig::original());
        let b = run_case(&build_proxy(&mk(3)), DetectorConfig::original());
        prop_assert_eq!(a.locations, b.locations);
        prop_assert_eq!(a.bus_fp, b.bus_fp);
        prop_assert_eq!(a.dtor_fp, b.dtor_fp);
        prop_assert_eq!(a.real, b.real);
    }

    /// Scenario generation invariants: request counts add up, every flow
    /// shares one Call-ID, CSeq strictly increases within a flow.
    #[test]
    fn scenario_flow_invariants(
        registers in 0usize..10, calls in 0usize..10,
        cancelled in 0usize..10, options in 0usize..10, seed in any::<u64>(),
    ) {
        let spec = ScenarioSpec {
            registers, calls, cancelled_calls: cancelled, options, seed,
            ..Default::default()
        };
        let reqs = generate(&spec);
        prop_assert_eq!(reqs.len(), spec.request_count());
        // Group by call id: within a group, cseq strictly increases.
        use std::collections::HashMap;
        let mut groups: HashMap<&str, Vec<u32>> = HashMap::new();
        for r in &reqs {
            groups.entry(r.call_id.as_str()).or_default().push(r.cseq);
        }
        for (cid, seqs) in groups {
            prop_assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "cseq must increase within flow {cid}: {seqs:?}"
            );
        }
        // Round trip through the wire format.
        for r in reqs.iter().take(5) {
            let back = sipsim::SipRequest::parse(&r.render()).unwrap();
            prop_assert_eq!(&back, r);
        }
    }
}
