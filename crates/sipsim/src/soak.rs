//! The million-session soak harness: generative SIP traffic in phases,
//! under a kill schedule, with bounded-memory detection and a
//! crash-recoverable warning catalogue.
//!
//! The paper's subject is a *long-running* server (§3.3: a 500 kLOC SIP
//! proxy under SIPp load for hours); the T1–T8 cases are short fixed
//! scripts. This module closes that gap. A [`crate::workload::SoakSpec`]
//! describes an unbounded-looking load — heavy-tailed dialog lifetimes,
//! registration churn, mid-call re-INVITEs, multi-proxy forwarding,
//! thread-pool resize under load — and the soak driver executes it in
//! *phases*: each phase is one VM run of a guest program that is a pure
//! function of `(spec, phase)`. Purity buys three properties at once:
//!
//! * **Determinism**: any phase can be regenerated bit-identically in
//!   isolation, so `--jobs N` sharding and crash/resume cannot change the
//!   final answer.
//! * **Crash recovery**: the append-only [`SoakLog`] commits each phase
//!   with a trailing `phase` line *after* its `warn` lines; a harness
//!   crash mid-append tears at most the final line, which
//!   [`SoakLog::parse_repair`] drops along with any uncommitted `warn`
//!   lines — the re-run of the interrupted phase reproduces them exactly.
//! * **Bounded memory**: each phase runs a fresh detector, and *within* a
//!   phase the guest emits `HgCleanMemory` at dialog teardown so the
//!   engines' `reset_range` reclaims dead-dialog shadow state; the peak
//!   live-granule count stays flat in the dialog count (the `--mem-report`
//!   evidence), with [`helgrind_core::DetectorBudget`] as a hard backstop.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::workload::{phase_cells, DialogClass, SoakSpec};
use helgrind_core::{trim_torn_tail, warning_fingerprint, AnyDetector, Report, ReportKind};
use vexec::faults::FaultPlan;
use vexec::filter::FilterTool;
use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::{ClientOp, Cond, Expr, ProcId, Program, SyncKind, SyncOp};
use vexec::sched::SeededRandom;
use vexec::tool::CountingTool;
use vexec::vm::{run_flat, Termination, VmOptions};

/// Message block layout: `[0]` handler code, `[8]` touches, `[16]`
/// re-INVITEs. 32 bytes so the block spans several shadow granules.
const MSG_SIZE: u64 = 32;
/// Per-call session object size.
const SESSION_SIZE: u64 = 64;

/// Deterministic per-phase fault plan: kill-only, armed in odd phases
/// (see [`SoakSpec::phase_armed`]). The plan is attached even when
/// disarmed so fault counters are always present.
pub fn phase_fault_plan(spec: &SoakSpec, phase: u32) -> FaultPlan {
    let armed = spec.phase_armed(phase);
    FaultPlan {
        seed: spec.seed ^ 0xFA17_0000 ^ (u64::from(phase) << 32),
        wakeup_permille: 0,
        lockfail_permille: 0,
        allocfail_permille: 0,
        kill_permille: if armed { spec.kill_permille } else { 0 },
        max_kills: if armed { spec.max_kills_per_phase } else { 0 },
    }
    .normalized()
}

/// Deterministic per-phase schedule seed.
pub fn phase_sched_seed(spec: &SoakSpec, phase: u32) -> u64 {
    spec.seed ^ 0x5C4E_D00D ^ u64::from(phase).wrapping_mul(0xD129_5CFA_9A7E_11E5)
}

/// Build the guest program for one phase: a thread-pool SIP proxy serving
/// this phase's sampled dialog mix. Site inventory (file:line is the
/// warning identity):
///
/// * `registrar.cpp:55` — unlocked binding-expiry counter (**race**)
/// * `stats.cpp:20` — unlocked active-call counter (**race**)
/// * `stats.cpp:25` — unlocked re-INVITE counter (**race**)
/// * `routing.cpp:{115,125,...}` — unlocked forward counter, one line per
///   forwarding hop (**race**, only for hop depths the mix uses)
/// * everything else (bindings, session state, options, hop tables) is
///   properly locked or thread-confined — the clean bulk of the traffic.
pub fn build_soak_phase(spec: &SoakSpec, phase: u32) -> Program {
    let cells = phase_cells(spec, phase);
    let mut pb = ProgramBuilder::new();

    let qcell = pb.global("g_queue", 8);
    let mtx_registrar = pb.global("g_mtx_registrar", 8);
    let mtx_session = pb.global("g_mtx_session", 8);
    let mtx_routing = pb.global("g_mtx_routing", 8);
    let mtx_stats = pb.global("g_mtx_stats", 8);
    let reg_bindings = pb.global("g_reg_bindings", 8);
    let reg_expiry = pb.global("g_reg_expiry", 8);
    let active_calls = pb.global("g_active_calls", 8);
    let reinvite_stat = pb.global("g_reinvite_stat", 8);
    let options_served = pb.global("g_options_served", 8);
    let forward_stat = pb.global("g_forward_stat", 8);
    let max_hops = spec.hops.clamp(1, 4);
    let hop_tables: Vec<_> =
        (1..=max_hops).map(|h| pb.global(&format!("g_hop_table_{h}"), 8)).collect();

    // ---- forwarding chain: hop_h forwards to hop_{h-1} (multi-proxy
    // topology; each hop is "the next proxy in the route set"). ----
    let mut hop_procs: Vec<ProcId> = Vec::new();
    for h in 1..=max_hops {
        let loc = pb.loc("routing.cpp", 100 + 10 * h, &format!("Proxy{h}::forward"));
        let mut p = ProcBuilder::new(0);
        p.at(loc);
        let m = p.load_new(mtx_routing, 8);
        p.lock(m);
        p.at(pb.loc("routing.cpp", 102 + 10 * h, &format!("Proxy{h}::forward")));
        let t = p.load_new(hop_tables[(h - 1) as usize], 8);
        p.store(hop_tables[(h - 1) as usize], Expr::Reg(t).add(1u64.into()), 8);
        p.unlock(m);
        // The shared forwarded-requests counter is updated *outside* the
        // routing lock — one race site per hop depth.
        p.at(pb.loc("routing.cpp", 105 + 10 * h, &format!("Proxy{h}::forward")));
        let f = p.load_new(forward_stat, 8);
        p.store(forward_stat, Expr::Reg(f).add(1u64.into()), 8);
        if h > 1 {
            p.call(hop_procs[(h - 2) as usize], vec![], None);
        }
        p.ret(None);
        hop_procs.push(pb.add_proc(&format!("forward_hop_{h}"), p));
    }

    // ---- registration churn handler ----
    let handle_register = {
        let loc = pb.loc("registrar.cpp", 30, "Registrar::refreshBinding");
        let mut p = ProcBuilder::new(1);
        p.at(loc);
        let msg = p.param(0);
        let touches = p.load_new(Expr::offset(msg, 8), 8);
        let m = p.load_new(mtx_registrar, 8);
        let i = p.let_(0u64);
        p.begin_while(Cond::Lt(Expr::Reg(i), Expr::Reg(touches)));
        p.lock(m);
        p.at(pb.loc("registrar.cpp", 40, "Registrar::refreshBinding"));
        let b = p.load_new(reg_bindings, 8);
        p.store(reg_bindings, Expr::Reg(b).add(1u64.into()), 8);
        p.unlock(m);
        p.assign(i, Expr::Reg(i).add(1u64.into()));
        p.end_while();
        // Expiry bookkeeping forgot the lock: the churn race.
        p.at(pb.loc("registrar.cpp", 55, "Registrar::refreshBinding"));
        let e = p.load_new(reg_expiry, 8);
        p.store(reg_expiry, Expr::Reg(e).add(1u64.into()), 8);
        emit_msg_teardown(&mut p, spec, msg);
        p.ret(None);
        pb.add_proc("handle_register", p)
    };

    // ---- OPTIONS keep-alive handler (fully locked: the clean class) ----
    let handle_options = {
        let loc = pb.loc("options.cpp", 15, "OptionsHandler::process");
        let mut p = ProcBuilder::new(1);
        p.at(loc);
        let msg = p.param(0);
        let touches = p.load_new(Expr::offset(msg, 8), 8);
        let m = p.load_new(mtx_stats, 8);
        let i = p.let_(0u64);
        p.begin_while(Cond::Lt(Expr::Reg(i), Expr::Reg(touches)));
        p.lock(m);
        p.at(pb.loc("options.cpp", 18, "OptionsHandler::process"));
        let s = p.load_new(options_served, 8);
        p.store(options_served, Expr::Reg(s).add(1u64.into()), 8);
        p.unlock(m);
        p.assign(i, Expr::Reg(i).add(1u64.into()));
        p.end_while();
        emit_msg_teardown(&mut p, spec, msg);
        p.ret(None);
        pb.add_proc("handle_options", p)
    };

    // ---- call handlers, one per forwarding depth the mix uses ----
    let mut call_handlers: Vec<(u32, ProcId)> = Vec::new();
    let used_hops: std::collections::BTreeSet<u32> = cells
        .iter()
        .filter_map(|(c, _)| match c.class {
            DialogClass::Call { hops } => Some(hops.min(max_hops)),
            _ => None,
        })
        .collect();
    for &h in &used_hops {
        let loc = pb.loc("session.cpp", 25, &format!("CallHandler{h}::process"));
        let mut p = ProcBuilder::new(1);
        p.at(loc);
        let msg = p.param(0);
        let touches = p.load_new(Expr::offset(msg, 8), 8);
        let reinvites = p.load_new(Expr::offset(msg, 16), 8);
        let m = p.load_new(mtx_session, 8);
        // Per-dialog session object: thread-confined heap, the clean bulk
        // whose shadow state HgCleanMemory reclaims at teardown.
        p.at(pb.loc("session.cpp", 28, &format!("CallHandler{h}::process")));
        let sess = p.alloc(SESSION_SIZE);
        let i = p.let_(0u64);
        p.begin_while(Cond::Lt(Expr::Reg(i), Expr::Reg(touches)));
        p.lock(m);
        p.at(pb.loc("session.cpp", 30, &format!("CallHandler{h}::process")));
        p.store(Expr::Reg(sess), Expr::Reg(i), 8);
        p.store(Expr::offset(sess, 8), Expr::Reg(touches), 8);
        p.unlock(m);
        p.assign(i, Expr::Reg(i).add(1u64.into()));
        p.end_while();
        // Active-call gauge maintained without the stats lock: the race.
        p.at(pb.loc("stats.cpp", 20, "CallStats::onInvite"));
        let a = p.load_new(active_calls, 8);
        p.store(active_calls, Expr::Reg(a).add(1u64.into()), 8);
        p.call(hop_procs[(h - 1) as usize], vec![], None);
        // Mid-call re-INVITEs: session rewrite under the lock, another
        // unlocked counter beside it.
        let j = p.let_(0u64);
        p.begin_while(Cond::Lt(Expr::Reg(j), Expr::Reg(reinvites)));
        p.lock(m);
        p.at(pb.loc("session.cpp", 60, &format!("CallHandler{h}::process")));
        p.store(Expr::offset(sess, 16), Expr::Reg(j), 8);
        p.unlock(m);
        p.at(pb.loc("stats.cpp", 25, "CallStats::onReinvite"));
        let r = p.load_new(reinvite_stat, 8);
        p.store(reinvite_stat, Expr::Reg(r).add(1u64.into()), 8);
        p.assign(j, Expr::Reg(j).add(1u64.into()));
        p.end_while();
        // Dialog teardown: release the session heap and hand its shadow
        // back to the detector.
        p.at(pb.loc("session.cpp", 70, &format!("CallHandler{h}::process")));
        if spec.reclaim {
            p.client(ClientOp::HgCleanMemory {
                addr: Expr::Reg(sess),
                size: Expr::Const(SESSION_SIZE),
            });
        }
        p.free(sess);
        emit_msg_teardown(&mut p, spec, msg);
        p.ret(None);
        call_handlers.push((h, pb.add_proc(&format!("handle_call_{h}"), p)));
    }

    // ---- dispatcher ----
    let dispatch = {
        let loc = pb.loc("dispatch.cpp", 12, "Dispatcher::route");
        let mut p = ProcBuilder::new(1);
        p.at(loc);
        let msg = p.param(0);
        let code = p.load_new(Expr::Reg(msg), 8);
        p.begin_if(Cond::Eq(Expr::Reg(code), Expr::Const(1)));
        p.call(handle_register, vec![Expr::Reg(msg)], None);
        p.end_if();
        p.begin_if(Cond::Eq(Expr::Reg(code), Expr::Const(2)));
        p.call(handle_options, vec![Expr::Reg(msg)], None);
        p.end_if();
        for (h, proc) in &call_handlers {
            p.begin_if(Cond::Eq(Expr::Reg(code), Expr::Const(10 + u64::from(*h))));
            p.call(*proc, vec![Expr::Reg(msg)], None);
            p.end_if();
        }
        p.ret(None);
        pb.add_proc("dispatch", p)
    };

    // ---- pool worker ----
    let pool_worker = {
        let loc = pb.loc("pool.cpp", 12, "pool_worker");
        let mut p = ProcBuilder::new(0);
        p.at(loc);
        let q = p.load_new(qcell, 8);
        let running = p.let_(1u64);
        let v = p.reg();
        p.begin_while(Cond::Ne(Expr::Reg(running), Expr::Const(0)));
        p.sync(SyncOp::QueueGet { queue: Expr::Reg(q), dst: v });
        p.begin_if(Cond::Eq(Expr::Reg(v), Expr::Const(0)));
        p.assign(running, 0u64);
        p.begin_else();
        p.call(dispatch, vec![Expr::Reg(v)], None);
        p.end_if();
        p.end_while();
        pb.add_proc("pool_worker", p)
    };

    // ---- main: init, spawn pool, enqueue the mix (resizing the pool
    // mid-stream), sentinels, join ----
    let mloc = pb.loc("main.cpp", 20, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    for cell in [mtx_registrar, mtx_session, mtx_routing, mtx_stats] {
        let mx = m.new_mutex();
        m.store(cell, mx, 8);
    }
    let q = m.new_sync(SyncKind::Queue, 16u64);
    m.store(qcell, q, 8);
    let workers = spec.workers.max(1);
    let mut joins = Vec::new();
    for _ in 0..workers {
        joins.push(m.spawn(pool_worker, vec![]));
    }
    let total: u64 = cells.iter().map(|(_, n)| *n).sum();
    let resize_at = if spec.resize_workers > 0 { total / 2 } else { u64::MAX };
    let mut enqueued = 0u64;
    let mut resized = false;
    m.at(pb.loc("main.cpp", 40, "main"));
    let emit_run = |m: &mut ProcBuilder, code: u64, touches: u64, reinvites: u64, count: u64| {
        if count == 0 {
            return;
        }
        m.begin_repeat(count);
        let msg = m.alloc(MSG_SIZE);
        m.store(Expr::Reg(msg), code, 8);
        m.store(Expr::offset(msg, 8), touches, 8);
        m.store(Expr::offset(msg, 16), reinvites, 8);
        m.sync(SyncOp::QueuePut { queue: Expr::Reg(q), value: Expr::Reg(msg) });
        m.end_repeat();
    };
    for (cell, count) in &cells {
        let code = cell.code();
        let (touches, reinvites) = (u64::from(cell.touches), u64::from(cell.reinvites));
        let mut remaining = *count;
        // Thread-pool resize under load: once half the traffic is in
        // flight, grow the pool — splitting the current cell's run if the
        // boundary lands inside it.
        if !resized && enqueued + remaining > resize_at {
            let before = resize_at - enqueued;
            emit_run(&mut m, code, touches, reinvites, before);
            enqueued += before;
            remaining -= before;
            for _ in 0..spec.resize_workers {
                joins.push(m.spawn(pool_worker, vec![]));
            }
            resized = true;
        }
        emit_run(&mut m, code, touches, reinvites, remaining);
        enqueued += remaining;
    }
    if !resized && spec.resize_workers > 0 {
        for _ in 0..spec.resize_workers {
            joins.push(m.spawn(pool_worker, vec![]));
        }
    }
    let pool_size = workers + if spec.resize_workers > 0 { spec.resize_workers } else { 0 };
    for _ in 0..pool_size {
        m.sync(SyncOp::QueuePut { queue: Expr::Reg(q), value: Expr::Const(0) });
    }
    for h in joins {
        m.join(h);
    }
    m.ret(None);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

/// Message-block teardown shared by every handler: reclaim the shadow of
/// the request the pool just finished with, then free it.
fn emit_msg_teardown(p: &mut ProcBuilder, spec: &SoakSpec, msg: vexec::ir::RegId) {
    if spec.reclaim {
        p.client(ClientOp::HgCleanMemory { addr: Expr::Reg(msg), size: Expr::Const(MSG_SIZE) });
    }
    p.free(msg);
}

/// How a phase's VM run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PhaseEnd {
    Clean,
    /// Number of threads blocked at the deadlock.
    Deadlock(usize),
    GuestError(String),
    FuelExhausted,
}

impl PhaseEnd {
    fn label(&self) -> String {
        match self {
            PhaseEnd::Clean => "clean".into(),
            PhaseEnd::Deadlock(n) => format!("deadlock:{n}"),
            PhaseEnd::GuestError(e) => format!("guest-error:{}", esc(e)),
            PhaseEnd::FuelExhausted => "fuel-exhausted".into(),
        }
    }

    fn parse(s: &str) -> Result<PhaseEnd, String> {
        if s == "clean" {
            return Ok(PhaseEnd::Clean);
        }
        if s == "fuel-exhausted" {
            return Ok(PhaseEnd::FuelExhausted);
        }
        if let Some(n) = s.strip_prefix("deadlock:") {
            return n
                .parse()
                .map(PhaseEnd::Deadlock)
                .map_err(|_| format!("bad deadlock count in {s:?}"));
        }
        if let Some(e) = s.strip_prefix("guest-error:") {
            return Ok(PhaseEnd::GuestError(unesc(e)));
        }
        Err(format!("unknown phase end {s:?}"))
    }
}

/// Per-phase counters, one `phase` line in the soak log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseStats {
    pub phase: u32,
    pub dialogs: u64,
    pub events: u64,
    pub slots: u64,
    pub kills: u64,
    pub leaked_locks: u64,
    pub leaked_bytes: u64,
    /// Reports the detector produced this phase (pre-dedup).
    pub warnings: usize,
    /// High-water mark of live shadow granules (max over engines).
    pub peak_granules: usize,
    /// Live granules when the phase finished.
    pub end_granules: usize,
    /// A detector budget cap degraded this phase.
    pub truncated: bool,
    pub end: PhaseEnd,
}

/// Everything one phase hands back to the driver.
#[derive(Clone, Debug)]
pub struct PhaseOutcome {
    pub stats: PhaseStats,
    pub reports: Vec<Report>,
}

/// Run one phase: build the guest, attach the phase's fault plan and
/// seeded schedule, execute under `det` (or detection-off when `None`,
/// the bench baseline), and collect the evidence. Pure in
/// `(spec, phase, det config)` — the soak determinism contract.
pub fn run_phase(
    spec: &SoakSpec,
    phase: u32,
    det: Option<AnyDetector>,
    use_filter: bool,
    max_slots: Option<u64>,
) -> PhaseOutcome {
    let program = build_soak_phase(spec, phase);
    let flat = program.lower();
    let opts = VmOptions {
        faults: Some(phase_fault_plan(spec, phase)),
        max_slots: max_slots.unwrap_or(VmOptions::default().max_slots),
        ..Default::default()
    };
    let mut sched = SeededRandom::new(phase_sched_seed(spec, phase));
    let (r, det) = match det {
        Some(det) => {
            if use_filter {
                let mut tool = FilterTool::new(det);
                let r = run_flat(&flat, &mut tool, &mut sched, opts);
                (r, Some(tool.into_parts().0))
            } else {
                let mut det = det;
                let r = run_flat(&flat, &mut det, &mut sched, opts);
                (r, Some(det))
            }
        }
        None => {
            let mut tool = CountingTool::new();
            let r = run_flat(&flat, &mut tool, &mut sched, opts);
            (r, None)
        }
    };
    let end = match &r.termination {
        Termination::AllExited => PhaseEnd::Clean,
        Termination::Deadlock(waits) => PhaseEnd::Deadlock(waits.len()),
        Termination::GuestError(e) => PhaseEnd::GuestError(e.to_string()),
        Termination::FuelExhausted => PhaseEnd::FuelExhausted,
    };
    let faults = r.faults.unwrap_or_default();
    let (reports, peak, end_live, truncated) = match det {
        Some(mut det) => {
            let stats = det.engine_stats();
            let peak = stats.iter().map(|s| s.peak_granules).max().unwrap_or(0);
            let live = stats.iter().map(|s| s.live_granules).max().unwrap_or(0);
            let truncated = det.truncated();
            (det.take_reports(), peak, live, truncated)
        }
        None => (Vec::new(), 0, 0, false),
    };
    PhaseOutcome {
        stats: PhaseStats {
            phase,
            dialogs: spec.phase_dialogs(phase),
            events: r.stats.events,
            slots: r.stats.slots,
            kills: faults.kills,
            leaked_locks: faults.leaked_locks,
            leaked_bytes: faults.leaked_bytes,
            warnings: reports.len(),
            peak_granules: peak,
            end_granules: end_live,
            truncated,
            end,
        },
        reports,
    }
}

/// One fingerprint-deduped warning location in the catalogue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatEntry {
    pub kind: ReportKind,
    pub file: String,
    pub line: u32,
    pub func: String,
    pub hits: u64,
    pub first_phase: u32,
    pub last_phase: u32,
}

const LOG_MAGIC: &str = "raceline-soak-log v1";

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// The soak run's durable state: committed phases plus the
/// fingerprint-deduped warning catalogue, serialized as an append-only
/// line log. Layout per phase: the phase's `warn` lines first, then one
/// `phase` line acting as the commit record — so a crash anywhere during
/// an append loses only uncommitted lines, never committed state.
#[derive(Clone, Debug, Default)]
pub struct SoakLog {
    pub params: String,
    pub phases: Vec<PhaseStats>,
    /// Fingerprint → catalogue entry (BTreeMap: deterministic order).
    pub catalogue: BTreeMap<String, CatEntry>,
}

impl SoakLog {
    pub fn new(spec: &SoakSpec) -> Self {
        SoakLog { params: spec.params_line(), ..Default::default() }
    }

    /// First phase index not yet committed.
    pub fn next_phase(&self) -> u32 {
        self.phases.len() as u32
    }

    /// Log header (magic + spec echo), written once at run start.
    pub fn header(&self) -> String {
        format!("{LOG_MAGIC}\nspec {}\n", self.params)
    }

    /// The appendable block committing `outcome`: per-location `warn`
    /// lines (fingerprint-deduped within the phase) followed by the
    /// `phase` commit line.
    pub fn phase_block(outcome: &PhaseOutcome) -> String {
        let mut agg: BTreeMap<String, (u64, &Report)> = BTreeMap::new();
        for r in &outcome.reports {
            let e = agg.entry(warning_fingerprint(r)).or_insert((0, r));
            e.0 += 1;
        }
        let mut out = String::new();
        for (hits, r) in agg.values() {
            let _ = writeln!(
                out,
                "warn {hits}\t{}\t{}\t{}\t{}",
                r.kind.code(),
                r.line,
                esc(&r.file),
                esc(&r.func),
            );
        }
        let s = &outcome.stats;
        let _ = writeln!(
            out,
            "phase {}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            s.phase,
            s.dialogs,
            s.events,
            s.slots,
            s.kills,
            s.leaked_locks,
            s.leaked_bytes,
            s.warnings,
            s.peak_granules,
            s.end_granules,
            u8::from(s.truncated),
            s.end.label(),
        );
        out
    }

    /// Fold a committed phase into the in-memory state. Phases must be
    /// folded in order.
    pub fn fold_phase(&mut self, outcome: &PhaseOutcome) {
        assert_eq!(outcome.stats.phase, self.next_phase(), "phases must be committed in order");
        let phase = outcome.stats.phase;
        let mut agg: BTreeMap<String, (u64, &Report)> = BTreeMap::new();
        for r in &outcome.reports {
            let e = agg.entry(warning_fingerprint(r)).or_insert((0, r));
            e.0 += 1;
        }
        for (fp, (hits, r)) in agg {
            self.catalogue
                .entry(fp)
                .and_modify(|e| {
                    e.hits += hits;
                    e.last_phase = phase;
                })
                .or_insert(CatEntry {
                    kind: r.kind,
                    file: r.file.clone(),
                    line: r.line,
                    func: r.func.clone(),
                    hits,
                    first_phase: phase,
                    last_phase: phase,
                });
        }
        self.phases.push(outcome.stats.clone());
    }

    /// Full rendering (header + every committed block) — what a complete
    /// log file contains.
    pub fn render(&self) -> String {
        let mut out = self.header();
        // Re-deriving per-phase warn lines from the folded catalogue is
        // not possible (hits are summed), so a full render is only used
        // for fresh files; appends use [`Self::phase_block`].
        for s in &self.phases {
            let _ = writeln!(
                out,
                "phase {}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                s.phase,
                s.dialogs,
                s.events,
                s.slots,
                s.kills,
                s.leaked_locks,
                s.leaked_bytes,
                s.warnings,
                s.peak_granules,
                s.end_granules,
                u8::from(s.truncated),
                s.end.label(),
            );
        }
        out
    }

    fn parse_strict(text: &str) -> Result<(SoakLog, usize), String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l.trim() == LOG_MAGIC => {}
            other => return Err(format!("bad soak log header: {other:?}")),
        }
        let params = match lines.next() {
            Some(l) => l
                .strip_prefix("spec ")
                .ok_or_else(|| format!("soak log line 2: expected spec line, got {l:?}"))?
                .to_string(),
            None => return Err("soak log: missing spec line".into()),
        };
        let mut log = SoakLog { params, ..Default::default() };
        // Pending `warn` lines of the not-yet-committed phase.
        let mut pending: Vec<(u64, ReportKind, u32, String, String)> = Vec::new();
        for (ln, line) in lines.enumerate() {
            let line = line.trim_end_matches('\r');
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| format!("soak log line {}: missing value", ln + 3))?;
            let fields: Vec<&str> = rest.split('\t').collect();
            let num = |s: &str| {
                s.parse::<u64>().map_err(|_| format!("soak log line {}: bad number", ln + 3))
            };
            match key {
                "warn" => {
                    if fields.len() != 5 {
                        return Err(format!(
                            "soak log line {}: expected 5 warn fields, got {}",
                            ln + 3,
                            fields.len()
                        ));
                    }
                    let kind = ReportKind::from_code(fields[1]).ok_or_else(|| {
                        format!("soak log line {}: unknown kind {:?}", ln + 3, fields[1])
                    })?;
                    pending.push((
                        num(fields[0])?,
                        kind,
                        num(fields[2])? as u32,
                        unesc(fields[3]),
                        unesc(fields[4]),
                    ));
                }
                "phase" => {
                    if fields.len() != 12 {
                        return Err(format!(
                            "soak log line {}: expected 12 phase fields, got {}",
                            ln + 3,
                            fields.len()
                        ));
                    }
                    let phase = num(fields[0])? as u32;
                    if phase != log.next_phase() {
                        return Err(format!(
                            "soak log line {}: phase {} out of order (expected {})",
                            ln + 3,
                            phase,
                            log.next_phase()
                        ));
                    }
                    let stats = PhaseStats {
                        phase,
                        dialogs: num(fields[1])?,
                        events: num(fields[2])?,
                        slots: num(fields[3])?,
                        kills: num(fields[4])?,
                        leaked_locks: num(fields[5])?,
                        leaked_bytes: num(fields[6])?,
                        warnings: num(fields[7])? as usize,
                        peak_granules: num(fields[8])? as usize,
                        end_granules: num(fields[9])? as usize,
                        truncated: num(fields[10])? != 0,
                        end: PhaseEnd::parse(fields[11])?,
                    };
                    for (hits, kind, line_no, file, func) in pending.drain(..) {
                        let fp = format!("{}|{}|{}|{}", kind.code(), file, line_no, func);
                        log.catalogue
                            .entry(fp)
                            .and_modify(|e| {
                                e.hits += hits;
                                e.last_phase = phase;
                            })
                            .or_insert(CatEntry {
                                kind,
                                file,
                                line: line_no,
                                func,
                                hits,
                                first_phase: phase,
                                last_phase: phase,
                            });
                    }
                    log.phases.push(stats);
                }
                other => {
                    return Err(format!("soak log line {}: unknown key {other:?}", ln + 3));
                }
            }
        }
        Ok((log, pending.len()))
    }

    /// Parse a log file, tolerating the two corruptions an interrupted
    /// append leaves behind: a torn final line (dropped and reparsed, as
    /// checkpoint `parse_repair` does) and trailing `warn` lines with no
    /// `phase` commit record (dropped — the interrupted phase will be
    /// re-run and reproduce them exactly). Returns the log plus whether
    /// any repair was applied. Interior corruption still errors.
    pub fn parse_repair(text: &str) -> Result<(SoakLog, bool), String> {
        // A line only counts as committed when it is newline-terminated:
        // a torn `phase` line could otherwise parse by accident (e.g.
        // `deadlock:12` torn to `deadlock:1`). Anything after the last
        // newline is the torn tail.
        let (body, torn) = if text.ends_with('\n') {
            (text, false)
        } else {
            match trim_torn_tail(text) {
                Some(t) => (t, true),
                None => return Err("soak log: torn before the first complete line".into()),
            }
        };
        let (log, uncommitted) = Self::parse_strict(body)?;
        Ok((log, torn || uncommitted > 0))
    }

    /// The final human summary — also the byte-comparison artifact for
    /// the crash/resume and `--jobs` determinism gates, so everything in
    /// it must be a pure function of (spec, committed phases).
    pub fn render_summary(&self, mem_report: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "soak summary");
        let _ = writeln!(out, "spec: {}", self.params);
        let clean = self.phases.iter().filter(|p| p.end == PhaseEnd::Clean).count();
        let dead = self.phases.iter().filter(|p| matches!(p.end, PhaseEnd::Deadlock(_))).count();
        let gerr = self.phases.iter().filter(|p| matches!(p.end, PhaseEnd::GuestError(_))).count();
        let fuel = self.phases.iter().filter(|p| p.end == PhaseEnd::FuelExhausted).count();
        let _ = writeln!(
            out,
            "phases: {} committed ({clean} clean, {dead} deadlocked, {gerr} guest-error, \
             {fuel} fuel-exhausted)",
            self.phases.len()
        );
        let dialogs: u64 = self.phases.iter().map(|p| p.dialogs).sum();
        let events: u64 = self.phases.iter().map(|p| p.events).sum();
        let slots: u64 = self.phases.iter().map(|p| p.slots).sum();
        let _ = writeln!(out, "dialogs: {dialogs}  events: {events}  slots: {slots}");
        let kills: u64 = self.phases.iter().map(|p| p.kills).sum();
        let locks: u64 = self.phases.iter().map(|p| p.leaked_locks).sum();
        let bytes: u64 = self.phases.iter().map(|p| p.leaked_bytes).sum();
        let _ = writeln!(out, "kills: {kills}  leaked locks: {locks}  leaked bytes: {bytes}");
        if self.phases.iter().any(|p| p.truncated) {
            let _ = writeln!(out, "note: detector budget degraded one or more phases");
        }
        let _ = writeln!(out, "catalogue: {} warning location(s)", self.catalogue.len());
        for e in self.catalogue.values() {
            let _ = writeln!(
                out,
                "  {:>6}x phases {}-{} {} {}:{} in {}",
                e.hits,
                e.first_phase,
                e.last_phase,
                e.kind.code(),
                e.file,
                e.line,
                e.func
            );
        }
        if mem_report {
            let _ = writeln!(out, "mem-report: live shadow granules per phase");
            for p in &self.phases {
                let _ = writeln!(
                    out,
                    "  phase {:>3}: peak {:>8}  end {:>8}{}",
                    p.phase,
                    p.peak_granules,
                    p.end_granules,
                    if p.truncated { "  (truncated)" } else { "" }
                );
            }
            let peaks: Vec<usize> =
                self.phases.iter().filter(|p| p.dialogs > 0).map(|p| p.peak_granules).collect();
            match (peaks.iter().min(), peaks.iter().max()) {
                (Some(&lo), Some(&hi)) if lo > 0 => {
                    let flat = hi <= lo.saturating_mul(2);
                    let _ = writeln!(
                        out,
                        "mem-verdict: {} (peak range {lo}..{hi} across {} phase(s))",
                        if flat { "flat" } else { "growing" },
                        peaks.len()
                    );
                }
                _ => {
                    let _ = writeln!(out, "mem-verdict: n/a (no detection or no traffic)");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::DialogCell;
    use helgrind_core::{DetectorConfig, SuppressionSet};

    fn small_spec() -> SoakSpec {
        SoakSpec {
            dialogs: 240,
            phases: 4,
            seed: 0x50A4_0001,
            workers: 3,
            resize_workers: 1,
            kill_permille: 20,
            ..Default::default()
        }
    }

    fn det() -> AnyDetector {
        AnyDetector::by_name("hybrid", DetectorConfig::hybrid(), SuppressionSet::default())
    }

    #[test]
    fn phase_cells_are_deterministic_and_complete() {
        let spec = SoakSpec { dialogs: 10_000, phases: 7, ..Default::default() };
        for phase in 0..spec.phases {
            let a = phase_cells(&spec, phase);
            let b = phase_cells(&spec, phase);
            assert_eq!(a, b);
            let total: u64 = a.iter().map(|(_, n)| *n).sum();
            assert_eq!(total, spec.phase_dialogs(phase));
        }
        let all: u64 = (0..spec.phases).map(|p| spec.phase_dialogs(p)).sum();
        assert_eq!(all, spec.dialogs, "remainder lands in the last phase");
    }

    #[test]
    fn lifetimes_are_heavy_tailed() {
        let spec = SoakSpec { dialogs: 50_000, phases: 1, ..Default::default() };
        let cells = phase_cells(&spec, 0);
        let count_at =
            |t: u32| -> u64 { cells.iter().filter(|(c, _)| c.touches == t).map(|(_, n)| *n).sum() };
        let short = count_at(1);
        let long: u64 = (0..=8).map(|k| 1u32 << k).filter(|&t| t >= 16).map(count_at).sum();
        assert!(short > spec.dialogs / 3, "bucket 1 dominates: {short}");
        assert!(long > 0, "the tail reaches >=16-touch dialogs");
        let max_bucket = cells.iter().map(|(c, _)| c.touches).max().unwrap();
        assert!(max_bucket >= 64, "heavy tail present, got max {max_bucket}");
        assert!(max_bucket <= 256, "bounded Pareto cap");
    }

    #[test]
    fn phase_runs_are_deterministic() {
        let spec = small_spec();
        let a = run_phase(&spec, 1, Some(det()), true, None);
        let b = run_phase(&spec, 1, Some(det()), true, None);
        assert_eq!(a.stats, b.stats);
        assert_eq!(SoakLog::phase_block(&a), SoakLog::phase_block(&b));
        // And filter-invariant, like every other detector path.
        let c = run_phase(&spec, 1, Some(det()), false, None);
        assert_eq!(a.stats.warnings, c.stats.warnings);
        assert_eq!(SoakLog::phase_block(&a), SoakLog::phase_block(&c));
    }

    #[test]
    fn soak_finds_the_planted_races_and_only_them() {
        let spec = SoakSpec { kill_permille: 0, ..small_spec() };
        let mut log = SoakLog::new(&spec);
        for phase in 0..spec.phases {
            log.fold_phase(&run_phase(&spec, phase, Some(det()), true, None));
        }
        assert!(!log.catalogue.is_empty());
        for e in log.catalogue.values() {
            let planted = (e.file == "registrar.cpp" && e.line == 55)
                || (e.file == "stats.cpp" && (e.line == 20 || e.line == 25))
                || (e.file == "routing.cpp" && (105..=145).contains(&e.line));
            assert!(planted, "unexpected catalogue entry: {e:?}");
        }
        // The big unlocked counters are hit in every phase.
        let active = log
            .catalogue
            .values()
            .find(|e| e.file == "stats.cpp" && e.line == 20)
            .expect("active-call race found");
        assert_eq!(active.first_phase, 0);
        assert_eq!(active.last_phase, spec.phases - 1);
    }

    #[test]
    fn armed_phases_kill_and_leak() {
        let spec = SoakSpec { dialogs: 2_000, phases: 2, kill_permille: 50, ..small_spec() };
        assert!(!spec.phase_armed(0) && spec.phase_armed(1));
        let calm = run_phase(&spec, 0, Some(det()), true, None);
        assert_eq!(calm.stats.kills, 0);
        assert_eq!(calm.stats.end, PhaseEnd::Clean);
        let hostile = run_phase(&spec, 1, Some(det()), true, None);
        assert!(hostile.stats.kills >= 1, "{:?}", hostile.stats);
    }

    #[test]
    fn reclamation_keeps_peak_granules_flat() {
        // Double the traffic: with HgCleanMemory at dialog teardown the
        // peak barely moves; without it the dead-dialog shadow piles up
        // linearly.
        let small = SoakSpec { dialogs: 1_000, phases: 1, resize_workers: 0, ..small_spec() };
        let big = SoakSpec { dialogs: 4_000, ..small };
        let peak_small = run_phase(&small, 0, Some(det()), true, None).stats.peak_granules;
        let peak_big = run_phase(&big, 0, Some(det()), true, None).stats.peak_granules;
        assert!(peak_big < peak_small * 2, "reclaim keeps peak flat: {peak_small} -> {peak_big}");
        let no_reclaim = SoakSpec { reclaim: false, ..big };
        let peak_unbounded = run_phase(&no_reclaim, 0, Some(det()), true, None).stats.peak_granules;
        assert!(
            peak_unbounded > peak_big * 2,
            "without reclaim the shadow grows: {peak_big} vs {peak_unbounded}"
        );
    }

    #[test]
    fn log_roundtrips_and_repairs_torn_tails() {
        let spec = small_spec();
        let mut log = SoakLog::new(&spec);
        let mut file = log.header();
        let mut blocks = Vec::new();
        for phase in 0..spec.phases {
            let out = run_phase(&spec, phase, Some(det()), true, None);
            blocks.push(SoakLog::phase_block(&out));
            file.push_str(blocks.last().unwrap());
            log.fold_phase(&out);
        }
        let (parsed, repaired) = SoakLog::parse_repair(&file).unwrap();
        assert!(!repaired);
        assert_eq!(parsed.phases, log.phases);
        assert_eq!(parsed.catalogue, log.catalogue);
        assert_eq!(parsed.render_summary(true), log.render_summary(true));

        // Every truncation point mid-final-block repairs to exactly the
        // first three committed phases.
        let committed: usize = file.len() - blocks.last().unwrap().len();
        for cut in committed + 1..file.len() {
            let (r, repaired) =
                SoakLog::parse_repair(&file[..cut]).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
            assert!(repaired, "cut {cut} inside the uncommitted block");
            assert_eq!(r.phases.len(), 3, "cut {cut}");
            assert_eq!(r.phases, log.phases[..3]);
        }

        // Interior corruption is not a torn tail: flip a committed byte.
        let mut bad = file.clone().into_bytes();
        let mid = file.find("phase 1\t").unwrap();
        bad[mid] = b'#';
        assert!(SoakLog::parse_repair(&String::from_utf8(bad).unwrap()).is_err());
    }

    #[test]
    fn resumed_runs_reproduce_the_uninterrupted_summary() {
        let spec = small_spec();
        // Uninterrupted run.
        let mut full = SoakLog::new(&spec);
        for phase in 0..spec.phases {
            full.fold_phase(&run_phase(&spec, phase, Some(det()), true, None));
        }
        // Crash after phase 1's commit plus half an appended warn line.
        let mut file = full.header();
        for phase in 0..2 {
            file.push_str(&SoakLog::phase_block(&run_phase(&spec, phase, Some(det()), true, None)));
        }
        file.push_str("warn 3\tR"); // torn mid-line, no newline
        let (mut resumed, repaired) = SoakLog::parse_repair(&file).unwrap();
        assert!(repaired);
        assert_eq!(resumed.next_phase(), 2);
        for phase in resumed.next_phase()..spec.phases {
            resumed.fold_phase(&run_phase(&spec, phase, Some(det()), true, None));
        }
        assert_eq!(resumed.render_summary(true), full.render_summary(true));
    }

    #[test]
    fn dialog_cell_codes_are_stable() {
        assert_eq!(DialogCell { class: DialogClass::Register, touches: 1, reinvites: 0 }.code(), 1);
        assert_eq!(DialogCell { class: DialogClass::Options, touches: 1, reinvites: 0 }.code(), 2);
        assert_eq!(
            DialogCell { class: DialogClass::Call { hops: 3 }, touches: 1, reinvites: 0 }.code(),
            13
        );
    }
}
