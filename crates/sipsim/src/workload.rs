//! SIPp-style workload generation (§3.3: "The basic request patterns are
//! delivered to the application by an automated test suite. The main
//! utility of this test suite is SIPp, a tool for SIP load testing.").
//!
//! A [`ScenarioSpec`] describes a mix of call flows; [`generate`] expands
//! it into a deterministic (seeded) sequence of concrete SIP requests with
//! realistic Call-IDs, tags and Via branches.

use crate::sip::{Method, SipRequest};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The basic SIPp flow kinds used by the test cases.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowKind {
    /// REGISTER (binding refresh).
    Register,
    /// Full call: INVITE → ACK → BYE.
    Call,
    /// Mid-call cancel: INVITE → CANCEL.
    CancelledCall,
    /// Keep-alive probing: OPTIONS.
    Options,
}

impl FlowKind {
    /// The requests a single flow instance produces.
    pub fn methods(self) -> &'static [Method] {
        match self {
            FlowKind::Register => &[Method::Register],
            FlowKind::Call => &[Method::Invite, Method::Ack, Method::Bye],
            FlowKind::CancelledCall => &[Method::Invite, Method::Cancel],
            FlowKind::Options => &[Method::Options],
        }
    }
}

/// Mix of flows for one test case.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScenarioSpec {
    pub registers: usize,
    pub calls: usize,
    pub cancelled_calls: usize,
    pub options: usize,
    pub seed: u64,
}

impl ScenarioSpec {
    /// Total number of requests the scenario will produce.
    pub fn request_count(&self) -> usize {
        self.registers * FlowKind::Register.methods().len()
            + self.calls * FlowKind::Call.methods().len()
            + self.cancelled_calls * FlowKind::CancelledCall.methods().len()
            + self.options * FlowKind::Options.methods().len()
    }
}

fn token(rng: &mut StdRng, len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    (0..len).map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())] as char).collect()
}

/// Expand a scenario into concrete requests. Deterministic per seed.
pub fn generate(spec: &ScenarioSpec) -> Vec<SipRequest> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut out = Vec::with_capacity(spec.request_count());
    let mut flows: Vec<FlowKind> = Vec::new();
    flows.extend(std::iter::repeat_n(FlowKind::Register, spec.registers));
    flows.extend(std::iter::repeat_n(FlowKind::Call, spec.calls));
    flows.extend(std::iter::repeat_n(FlowKind::CancelledCall, spec.cancelled_calls));
    flows.extend(std::iter::repeat_n(FlowKind::Options, spec.options));

    for flow in flows {
        let user_a = format!("sip:user{}@example.com", rng.random_range(0..10_000u32));
        let user_b = format!("sip:user{}@example.com", rng.random_range(0..10_000u32));
        let call_id = format!("{}@proxy.example.com", token(&mut rng, 16));
        let from_tag = token(&mut rng, 10);
        let cseq0 = rng.random_range(1..1000u32);
        for (step, &method) in flow.methods().iter().enumerate() {
            let cseq = cseq0 + step as u32;
            let body = (method == Method::Invite).then(|| {
                format!(
                    "v=0\r\no={} IN IP4 10.0.0.{}",
                    token(&mut rng, 8),
                    rng.random_range(1..255u32)
                )
            });
            out.push(SipRequest {
                method,
                uri: user_b.clone(),
                via_branch: format!("z9hG4bK{}", token(&mut rng, 12)),
                from: user_a.clone(),
                from_tag: from_tag.clone(),
                to: user_b.clone(),
                call_id: call_id.clone(),
                cseq,
                body,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_count_matches_spec() {
        let spec = ScenarioSpec { registers: 3, calls: 2, cancelled_calls: 1, options: 4, seed: 1 };
        let reqs = generate(&spec);
        assert_eq!(reqs.len(), spec.request_count());
        assert_eq!(reqs.len(), 3 + 6 + 2 + 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = ScenarioSpec { registers: 2, calls: 2, cancelled_calls: 0, options: 0, seed: 7 };
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
        let c = generate(&ScenarioSpec { seed: 8, ..spec });
        assert_ne!(a, c);
    }

    #[test]
    fn call_flow_shares_call_id_and_increments_cseq() {
        let spec = ScenarioSpec { calls: 1, ..Default::default() };
        let reqs = generate(&spec);
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].method, Method::Invite);
        assert_eq!(reqs[1].method, Method::Ack);
        assert_eq!(reqs[2].method, Method::Bye);
        assert_eq!(reqs[0].call_id, reqs[2].call_id);
        assert_eq!(reqs[1].cseq, reqs[0].cseq + 1);
    }

    #[test]
    fn generated_requests_render_and_parse() {
        let spec =
            ScenarioSpec { registers: 2, calls: 2, cancelled_calls: 1, options: 1, seed: 42 };
        for req in generate(&spec) {
            let back = crate::sip::SipRequest::parse(&req.render()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn invites_carry_sdp_bodies() {
        let spec = ScenarioSpec { calls: 1, ..Default::default() };
        let reqs = generate(&spec);
        assert!(reqs[0].body.is_some());
        assert!(reqs[1].body.is_none());
    }
}
