//! SIPp-style workload generation (§3.3: "The basic request patterns are
//! delivered to the application by an automated test suite. The main
//! utility of this test suite is SIPp, a tool for SIP load testing.").
//!
//! A [`ScenarioSpec`] describes a mix of call flows; [`generate`] expands
//! it into a deterministic (seeded) sequence of concrete SIP requests with
//! realistic Call-IDs, tags and Via branches.

use crate::sip::{Method, SipRequest};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vexec::sched::SplitMix64;

/// The basic SIPp flow kinds used by the test cases.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowKind {
    /// REGISTER (binding refresh).
    Register,
    /// Full call: INVITE → ACK → BYE.
    Call,
    /// Mid-call cancel: INVITE → CANCEL.
    CancelledCall,
    /// Keep-alive probing: OPTIONS.
    Options,
}

impl FlowKind {
    /// The requests a single flow instance produces.
    pub fn methods(self) -> &'static [Method] {
        match self {
            FlowKind::Register => &[Method::Register],
            FlowKind::Call => &[Method::Invite, Method::Ack, Method::Bye],
            FlowKind::CancelledCall => &[Method::Invite, Method::Cancel],
            FlowKind::Options => &[Method::Options],
        }
    }
}

/// Network-level chaos applied to a generated request stream — the
/// workload analogue of the VM's fault injection. SIP runs over UDP, so
/// the paper's SIPp load tests implicitly exercised message loss,
/// retransmission (duplicates) and reordering; these knobs make that
/// explicit and deterministic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ChaosSpec {
    /// Per-request probability (‰) the request is dropped.
    pub drop_permille: u16,
    /// Per-request probability (‰) the request is duplicated
    /// (UDP retransmission).
    pub dup_permille: u16,
    /// Per-position probability (‰) of an adjacent swap (reordering).
    pub reorder_permille: u16,
    /// Seed for the chaos stream (independent of the scenario seed).
    pub seed: u64,
}

impl ChaosSpec {
    /// True when no knob is set — [`apply_chaos`] is then the identity.
    pub fn is_noop(&self) -> bool {
        self.drop_permille == 0 && self.dup_permille == 0 && self.reorder_permille == 0
    }
}

/// Apply a [`ChaosSpec`] to a request stream. Deterministic per
/// `(stream, spec)`; the identity when the spec is a no-op.
pub fn apply_chaos(reqs: Vec<SipRequest>, chaos: &ChaosSpec) -> Vec<SipRequest> {
    if chaos.is_noop() {
        return reqs;
    }
    let mut rng = SplitMix64::new(chaos.seed ^ 0x51B0_0B00_5EED_CA05);
    let mut out = Vec::with_capacity(reqs.len());
    for req in reqs {
        if rng.chance(chaos.drop_permille.into()) {
            continue; // lost on the wire
        }
        if rng.chance(chaos.dup_permille.into()) {
            out.push(req.clone()); // retransmission: same message twice
        }
        out.push(req);
    }
    for i in 1..out.len() {
        if rng.chance(chaos.reorder_permille.into()) {
            out.swap(i - 1, i);
        }
    }
    out
}

/// Mix of flows for one test case.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScenarioSpec {
    pub registers: usize,
    pub calls: usize,
    pub cancelled_calls: usize,
    pub options: usize,
    pub seed: u64,
    /// Network chaos applied after generation (default: none).
    pub chaos: ChaosSpec,
}

impl ScenarioSpec {
    /// Total number of requests the scenario will produce *before* chaos
    /// (drops/duplicates change the delivered count).
    pub fn request_count(&self) -> usize {
        self.registers * FlowKind::Register.methods().len()
            + self.calls * FlowKind::Call.methods().len()
            + self.cancelled_calls * FlowKind::CancelledCall.methods().len()
            + self.options * FlowKind::Options.methods().len()
    }
}

fn token(rng: &mut StdRng, len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    (0..len).map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())] as char).collect()
}

/// Expand a scenario into concrete requests. Deterministic per seed.
pub fn generate(spec: &ScenarioSpec) -> Vec<SipRequest> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut out = Vec::with_capacity(spec.request_count());
    let mut flows: Vec<FlowKind> = Vec::new();
    flows.extend(std::iter::repeat_n(FlowKind::Register, spec.registers));
    flows.extend(std::iter::repeat_n(FlowKind::Call, spec.calls));
    flows.extend(std::iter::repeat_n(FlowKind::CancelledCall, spec.cancelled_calls));
    flows.extend(std::iter::repeat_n(FlowKind::Options, spec.options));

    for flow in flows {
        let user_a = format!("sip:user{}@example.com", rng.random_range(0..10_000u32));
        let user_b = format!("sip:user{}@example.com", rng.random_range(0..10_000u32));
        let call_id = format!("{}@proxy.example.com", token(&mut rng, 16));
        let from_tag = token(&mut rng, 10);
        let cseq0 = rng.random_range(1..1000u32);
        for (step, &method) in flow.methods().iter().enumerate() {
            let cseq = cseq0 + step as u32;
            let body = (method == Method::Invite).then(|| {
                format!(
                    "v=0\r\no={} IN IP4 10.0.0.{}",
                    token(&mut rng, 8),
                    rng.random_range(1..255u32)
                )
            });
            out.push(SipRequest {
                method,
                uri: user_b.clone(),
                via_branch: format!("z9hG4bK{}", token(&mut rng, 12)),
                from: user_a.clone(),
                from_tag: from_tag.clone(),
                to: user_b.clone(),
                call_id: call_id.clone(),
                cseq,
                body,
            });
        }
    }
    apply_chaos(out, &spec.chaos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_count_matches_spec() {
        let spec = ScenarioSpec {
            registers: 3,
            calls: 2,
            cancelled_calls: 1,
            options: 4,
            seed: 1,
            ..Default::default()
        };
        let reqs = generate(&spec);
        assert_eq!(reqs.len(), spec.request_count());
        assert_eq!(reqs.len(), 3 + 6 + 2 + 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = ScenarioSpec { registers: 2, calls: 2, seed: 7, ..Default::default() };
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
        let c = generate(&ScenarioSpec { seed: 8, ..spec });
        assert_ne!(a, c);
    }

    #[test]
    fn call_flow_shares_call_id_and_increments_cseq() {
        let spec = ScenarioSpec { calls: 1, ..Default::default() };
        let reqs = generate(&spec);
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].method, Method::Invite);
        assert_eq!(reqs[1].method, Method::Ack);
        assert_eq!(reqs[2].method, Method::Bye);
        assert_eq!(reqs[0].call_id, reqs[2].call_id);
        assert_eq!(reqs[1].cseq, reqs[0].cseq + 1);
    }

    #[test]
    fn generated_requests_render_and_parse() {
        let spec = ScenarioSpec {
            registers: 2,
            calls: 2,
            cancelled_calls: 1,
            options: 1,
            seed: 42,
            ..Default::default()
        };
        for req in generate(&spec) {
            let back = crate::sip::SipRequest::parse(&req.render()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn invites_carry_sdp_bodies() {
        let spec = ScenarioSpec { calls: 1, ..Default::default() };
        let reqs = generate(&spec);
        assert!(reqs[0].body.is_some());
        assert!(reqs[1].body.is_none());
    }

    #[test]
    fn noop_chaos_is_identity() {
        let base = ScenarioSpec { registers: 4, calls: 4, seed: 3, ..Default::default() };
        let plain = generate(&base);
        let chaotic =
            generate(&ScenarioSpec { chaos: ChaosSpec { seed: 99, ..Default::default() }, ..base });
        assert_eq!(plain, chaotic);
        assert!(base.chaos.is_noop());
    }

    #[test]
    fn chaos_is_deterministic_and_each_knob_acts() {
        let base =
            ScenarioSpec { registers: 30, calls: 30, options: 30, seed: 5, ..Default::default() };
        let plain = generate(&base);

        let dropped = ScenarioSpec {
            chaos: ChaosSpec { drop_permille: 300, seed: 1, ..Default::default() },
            ..base
        };
        let a = generate(&dropped);
        assert_eq!(a, generate(&dropped), "chaos must be deterministic per seed");
        assert!(a.len() < plain.len(), "30% drop must lose messages");

        let duped = ScenarioSpec {
            chaos: ChaosSpec { dup_permille: 300, seed: 1, ..Default::default() },
            ..base
        };
        assert!(generate(&duped).len() > plain.len(), "30% dup must add retransmissions");

        let reordered = ScenarioSpec {
            chaos: ChaosSpec { reorder_permille: 300, seed: 1, ..Default::default() },
            ..base
        };
        let r = generate(&reordered);
        assert_ne!(r, plain, "30% reorder must permute");
        let key = |v: &[crate::sip::SipRequest]| {
            let mut k: Vec<String> =
                v.iter().map(|q| format!("{}:{}", q.call_id, q.cseq)).collect();
            k.sort();
            k
        };
        assert_eq!(key(&r), key(&plain), "reorder must preserve the multiset");
    }
}

// ---------------------------------------------------------------------------
// Generative soak load model
// ---------------------------------------------------------------------------

/// Parameters of the generative soak load: hundreds of thousands to
/// millions of SIP dialogs sampled from a seeded mix, executed in phases
/// by the soak driver (`sipsim::soak`). Everything downstream — the guest
/// program, the kill schedule, the warning catalogue — is a pure function
/// of this spec, which is what makes crash/resume byte-stable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SoakSpec {
    /// Total dialogs generated across all phases.
    pub dialogs: u64,
    /// Number of traffic phases (each phase is one VM run).
    pub phases: u32,
    /// Master seed: dialog mix, lifetimes, kill schedule, VM schedules.
    pub seed: u64,
    /// Thread-pool workers spawned at phase start.
    pub workers: u32,
    /// Extra workers spawned mid-phase (thread-pool resize under load);
    /// 0 disables the resize.
    pub resize_workers: u32,
    /// Maximum multi-proxy forwarding hops for call dialogs (1..=4).
    pub hops: u32,
    /// Fraction (‰) of dialogs that are REGISTER churn.
    pub churn_permille: u32,
    /// Fraction (‰) of dialogs that are OPTIONS keep-alives.
    pub options_permille: u32,
    /// Maximum mid-call re-INVITEs per call dialog.
    pub max_reinvites: u32,
    /// Kill rate (‰ per worker slot) in armed phases (odd phase indices).
    pub kill_permille: u32,
    /// Thread-death cap per armed phase.
    pub max_kills_per_phase: u32,
    /// Emit `HgCleanMemory` at dialog teardown so the detectors reclaim
    /// dead-dialog shadow state (the bounded-memory knob).
    pub reclaim: bool,
}

impl Default for SoakSpec {
    fn default() -> Self {
        SoakSpec {
            dialogs: 10_000,
            phases: 10,
            seed: 0x50A4_2007,
            workers: 4,
            resize_workers: 2,
            hops: 3,
            churn_permille: 300,
            options_permille: 100,
            max_reinvites: 2,
            kill_permille: 2,
            max_kills_per_phase: 2,
            reclaim: true,
        }
    }
}

impl SoakSpec {
    /// One-line canonical rendering, stored in the soak log header so a
    /// resume can refuse to continue a run with different parameters.
    pub fn params_line(&self) -> String {
        format!(
            "dialogs={} phases={} seed={:#x} workers={} resize={} hops={} churn={} \
             options={} reinvites={} kill={} max-kills={} reclaim={}",
            self.dialogs,
            self.phases,
            self.seed,
            self.workers,
            self.resize_workers,
            self.hops,
            self.churn_permille,
            self.options_permille,
            self.max_reinvites,
            self.kill_permille,
            self.max_kills_per_phase,
            u8::from(self.reclaim),
        )
    }

    /// Dialogs generated in `phase` (remainder goes to the last phase).
    pub fn phase_dialogs(&self, phase: u32) -> u64 {
        let phases = self.phases.max(1) as u64;
        let base = self.dialogs / phases;
        if u64::from(phase) == phases - 1 {
            base + self.dialogs % phases
        } else {
            base
        }
    }

    /// Is the kill schedule armed in `phase`? Odd phases, so every run
    /// alternates calm and hostile traffic and at least half the phases
    /// exercise clean recovery paths.
    pub fn phase_armed(&self, phase: u32) -> bool {
        self.kill_permille > 0 && self.max_kills_per_phase > 0 && phase % 2 == 1
    }
}

/// The dialog classes of the soak mix.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum DialogClass {
    /// Registration churn: binding refresh against the registrar.
    Register,
    /// OPTIONS keep-alive (stateless, fully locked — the clean class).
    Options,
    /// INVITE dialog forwarded through `hops` proxies.
    Call { hops: u32 },
}

/// One cell of the aggregated load: all dialogs sharing a class, a
/// lifetime bucket and a re-INVITE count execute the same guest code
/// path, so the guest program stays O(cells) while the dialog count only
/// appears in loop bounds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct DialogCell {
    pub class: DialogClass,
    /// Lifetime bucket: per-dialog touch count, heavy-tailed (see
    /// [`sample_touches`]).
    pub touches: u32,
    /// Mid-call re-INVITEs (call dialogs only).
    pub reinvites: u32,
}

impl DialogCell {
    /// Message code dispatched on by the guest (0 is the shutdown
    /// sentinel; codes identify the handler class).
    pub fn code(&self) -> u64 {
        match self.class {
            DialogClass::Register => 1,
            DialogClass::Options => 2,
            DialogClass::Call { hops } => 10 + u64::from(hops),
        }
    }
}

/// Heavy-tailed lifetime sample: bucket `2^k` with `P(bucket >= 2^k) =
/// 2^-k` — a discrete bounded Pareto (tail index 1) capped at 256, drawn
/// from the integer RNG only so the distribution is bit-reproducible on
/// every platform (no libm).
fn sample_touches(rng: &mut SplitMix64) -> u32 {
    1u32 << rng.next_u64().trailing_zeros().min(8)
}

/// Sample `phase`'s dialogs and aggregate them into deterministic
/// `(cell, count)` runs, sorted by cell. The per-phase RNG stream is
/// derived from `(seed, phase)`, so any phase can be regenerated in
/// isolation — the property crash/resume and `--jobs` sharding rely on.
pub fn phase_cells(spec: &SoakSpec, phase: u32) -> Vec<(DialogCell, u64)> {
    let mut rng =
        SplitMix64::new(spec.seed ^ (u64::from(phase).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    let mut cells: std::collections::BTreeMap<DialogCell, u64> = std::collections::BTreeMap::new();
    for _ in 0..spec.phase_dialogs(phase) {
        let class_draw = rng.pick(1000) as u32;
        let touches = sample_touches(&mut rng);
        let cell = if class_draw < spec.churn_permille {
            DialogCell { class: DialogClass::Register, touches, reinvites: 0 }
        } else if class_draw < spec.churn_permille + spec.options_permille {
            DialogCell { class: DialogClass::Options, touches, reinvites: 0 }
        } else {
            let hops = 1 + rng.pick(u64::from(spec.hops.clamp(1, 4))) as u32;
            let reinvites = rng.pick(u64::from(spec.max_reinvites) + 1) as u32;
            DialogCell { class: DialogClass::Call { hops }, touches, reinvites }
        };
        *cells.entry(cell).or_insert(0) += 1;
    }
    cells.into_iter().collect()
}
