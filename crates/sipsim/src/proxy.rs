//! The synthetic SIP proxy server: the workspace's stand-in for the 500
//! kLOC commercial application of §3.3.
//!
//! The builder assembles a guest program from a *site catalogue*: concrete
//! code patterns that produce exactly the three warning categories of the
//! paper's evaluation (Fig 5) —
//!
//! * **bus-lock false positives**: shared COW strings copied by concurrent
//!   request handlers (plain refcount read + `LOCK`-prefixed increment);
//! * **destructor false positives**: session objects used under a lock by
//!   several handlers, deleted by the last user *outside* the lock — the
//!   compiler-generated `~Class` vptr write is unsynchronised;
//! * **real races**: unlocked shared counters, the thread-unsafe
//!   `localtime` static buffer (§4.1.3), and the returned-reference bug of
//!   Fig 7.
//!
//! Every site has its own source location, so distinct warning locations
//! are countable per category, and each site's label is recorded in a
//! [`SiteMap`] so experiment harnesses can attribute every report to its
//! ground truth. Which warnings actually appear is decided entirely by the
//! detector configuration — the builder only lays out the code.

use cxxmodel::classes::{ClassId, ClassModel};
use cxxmodel::string::{self, StringSite};
use std::collections::HashMap;
use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::{Cond, Expr, GlobalId, ProcId, Program, SyncKind, SyncOp};

/// Ground-truth label of a warning site.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SiteLabel {
    /// Hardware bus-lock misinterpretation (removed by HWLC).
    BusLockFp,
    /// Polymorphic destruction (removed by HWLC+DR).
    DestructorFp,
    /// A genuine synchronisation fault.
    RealRace,
    /// Thread-pool ownership hand-off (Fig 11; removed by queue-aware
    /// hybrid detection, E12).
    HandoffFp,
}

/// Map from source location to ground-truth label.
#[derive(Debug, Default, Clone)]
pub struct SiteMap {
    map: HashMap<(String, u32), SiteLabel>,
}

impl SiteMap {
    fn insert(&mut self, file: &str, line: u32, label: SiteLabel) {
        self.map.insert((file.to_string(), line), label);
    }

    /// Classify a detector report by its (file, line).
    pub fn classify(&self, file: &str, line: u32) -> Option<SiteLabel> {
        self.map.get(&(file.to_string(), line)).copied()
    }

    /// Number of sites with a given label.
    pub fn count(&self, label: SiteLabel) -> usize {
        self.map.values().filter(|&&l| l == label).count()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// How requests are dispatched to handlers (§4.2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dispatch {
    /// One thread per request (the application's current pattern, Fig 10).
    ThreadPerRequest,
    /// A fixed pool of workers fed through a bounded queue (Fig 11).
    ThreadPool { workers: usize },
}

/// Proxy construction parameters.
#[derive(Clone, Debug)]
pub struct ProxyConfig {
    /// Number of shared-string (bus-lock FP) sites.
    pub bus_sites: usize,
    /// Number of polymorphic-destruction (destructor FP) sites.
    pub dtor_sites: usize,
    /// Number of real-race sites (two of which are the `localtime` and
    /// returned-reference patterns when `real_sites >= 2`).
    pub real_sites: usize,
    /// Concurrent touches per site (>= 2 so sharing actually occurs).
    pub touches_per_site: usize,
    /// Sites handled per request handler.
    pub sites_per_handler: usize,
    pub dispatch: Dispatch,
    /// Emit `VALGRIND_HG_DESTRUCT` annotations at delete sites (the DR
    /// instrumentation). Annotations are no-ops for detectors that do not
    /// honour them, so this is normally left on.
    pub annotate_deletes: bool,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            bus_sites: 4,
            dtor_sites: 6,
            real_sites: 4,
            touches_per_site: 2,
            sites_per_handler: 12,
            dispatch: Dispatch::ThreadPerRequest,
            annotate_deletes: true,
        }
    }
}

/// A built proxy: the guest program plus its ground truth.
#[derive(Debug)]
pub struct BuiltProxy {
    pub program: Program,
    pub sites: SiteMap,
    pub handlers: usize,
    pub requests: usize,
}

/// The proxy's source-tree modules; sites are spread across them.
pub const MODULES: [&str; 10] = [
    "transport",
    "parser",
    "registrar",
    "session",
    "billing",
    "stats",
    "config",
    "logging",
    "routing",
    "timer",
];

enum SiteKind {
    Dtor { class: ClassId, cell: GlobalId, pending: GlobalId, mutex_cell: GlobalId },
    Bus { cell: GlobalId, site: StringSite },
    Counter { cell: GlobalId },
    Localtime { localtime_proc: ProcId },
    ReturnedRef { getter: ProcId, data: GlobalId },
}

struct Site {
    kind: SiteKind,
    /// Location of the *touch* code in the handler.
    file: String,
    line: u32,
}

/// Build the proxy guest program for the given configuration.
pub fn build_proxy(cfg: &ProxyConfig) -> BuiltProxy {
    assert!(cfg.touches_per_site >= 2, "sites need at least two concurrent touches");
    assert!(cfg.sites_per_handler >= 1);
    let mut pb = ProgramBuilder::new();
    let mut classes = ClassModel::new();
    let mut sites: Vec<Site> = Vec::new();
    let mut map = SiteMap::default();

    // Per-module lock cells and line allocators.
    let module_mtx: Vec<GlobalId> =
        MODULES.iter().map(|m| pb.global(&format!("g_mtx_{m}"), 8)).collect();
    let mut module_lines = [100u32; MODULES.len()];
    let alloc_line = |mi: usize, lines: &mut [u32; MODULES.len()]| {
        let l = lines[mi];
        lines[mi] += 10;
        l
    };

    // All destructor-site classes share one polymorphic base, like a real
    // message hierarchy; its own dtor write is shadowed by the derived
    // class's (same granule, report-once), so it adds no locations.
    let base = classes.declare(&mut pb, "SipObject", "src/object.cpp", 10, None, 1);

    // ---- destructor FP sites ----
    for i in 0..cfg.dtor_sites {
        let mi = i % MODULES.len();
        let line = alloc_line(mi, &mut module_lines);
        let file = format!("src/{}.cpp", MODULES[mi]);
        let class = classes.declare(
            &mut pb,
            &format!("{}Session{i}", camel(MODULES[mi])),
            &file,
            line,
            Some(base),
            1,
        );
        let cell = pb.global(&format!("g_obj_{i}"), 8);
        let pending = pb.global(&format!("g_obj_pending_{i}"), 8);
        // The warning (if any) lands on the derived destructor's vptr
        // write: ClassModel places `~Class` at line + 1.
        map.insert(&file, line + 1, SiteLabel::DestructorFp);
        sites.push(Site {
            kind: SiteKind::Dtor { class, cell, pending, mutex_cell: module_mtx[mi] },
            file,
            line,
        });
    }

    // ---- bus-lock FP sites ----
    for i in 0..cfg.bus_sites {
        let mi = i % MODULES.len();
        let line = alloc_line(mi, &mut module_lines);
        let file = format!("src/{}.cpp", MODULES[mi]);
        let site = StringSite::new(&mut pb, &file, line);
        let cell = pb.global(&format!("g_str_{i}"), 8);
        // The warning lands on the `_M_grab` RMW at line + 1 (Fig 9).
        map.insert(&file, line + 1, SiteLabel::BusLockFp);
        sites.push(Site { kind: SiteKind::Bus { cell, site }, file, line });
    }

    // ---- real races ----
    let mut plain_counters = cfg.real_sites;
    if cfg.real_sites >= 2 {
        plain_counters = cfg.real_sites - 2;

        // Special 1: the glibc `localtime` static buffer (§4.1.3).
        let lt_file = "libc/time.c";
        let lt_line = 2201;
        let lt = pb.declare_proc("localtime");
        let loc = pb.loc(lt_file, lt_line, "localtime");
        let buf = pb.global("g_localtime_tm", 8);
        let mut p = ProcBuilder::new(1);
        p.at(loc);
        let t = p.param(0);
        p.store(buf, Expr::Reg(t), 8); // fills the static struct tm
        p.ret(Some(Expr::Global(buf)));
        pb.define_proc(lt, p);
        map.insert(lt_file, lt_line, SiteLabel::RealRace);
        sites.push(Site {
            kind: SiteKind::Localtime { localtime_proc: lt },
            file: "src/logging.cpp".to_string(),
            line: 900,
        });

        // Special 2: the Fig 7 returned-reference bug.
        let g_file = "src/config.cpp";
        let g_line = 88;
        let data = pb.global("g_domain_data", 8);
        let getter = pb.declare_proc("ServerModulesManagerImpl::getDomainData");
        let gloc = pb.loc(g_file, g_line, "ServerModulesManagerImpl::getDomainData");
        let mut g = ProcBuilder::new(0);
        g.at(gloc);
        let mx = g.load_new(module_mtx[6], 8); // config module's lock
        g.lock(mx);
        g.unlock(mx); // the MutexPtr guard dies at return
        g.ret(Some(Expr::Global(data)));
        pb.define_proc(getter, g);
        let use_file = "src/config.cpp".to_string();
        let use_line = 120;
        map.insert(&use_file, use_line, SiteLabel::RealRace);
        sites.push(Site {
            kind: SiteKind::ReturnedRef { getter, data },
            file: use_file,
            line: use_line,
        });
    }
    for i in 0..plain_counters {
        let mi = i % MODULES.len();
        let line = alloc_line(mi, &mut module_lines);
        let file = format!("src/{}.cpp", MODULES[mi]);
        let cell = pb.global(&format!("g_ctr_{i}"), 8);
        map.insert(&file, line, SiteLabel::RealRace);
        sites.push(Site { kind: SiteKind::Counter { cell }, file, line });
    }

    // ---- request handlers: chunk the sites ----
    let chunks: Vec<&[Site]> = sites.chunks(cfg.sites_per_handler).collect();
    let mut handler_procs: Vec<ProcId> = Vec::new();
    for (hi, chunk) in chunks.iter().enumerate() {
        let name = format!("RequestHandler{hi}::process");
        let mut h = ProcBuilder::new(0);
        for site in chunk.iter() {
            emit_touch(&mut pb, &mut h, &classes, site, cfg, &name);
        }
        handler_procs.push(pb.add_proc(&name, h));
    }
    let handlers = handler_procs.len();

    // ---- the dispatcher: reads the request message, updates it, routes
    // to the right handler, releases the message ----
    let dispatch = pb.declare_proc("dispatch_request");
    let dfile = "src/dispatch.cpp";
    let dloc_read = pb.loc(dfile, 40, "dispatch_request");
    // The message-payload write: harmless under thread-per-request
    // (ownership passed at create), a hand-off FP under a thread pool.
    let process_line = 44;
    let dloc_write = pb.loc(dfile, process_line, "dispatch_request");
    map.insert(dfile, process_line, SiteLabel::HandoffFp);
    {
        let mut d = ProcBuilder::new(1);
        let msg = d.param(0);
        d.at(dloc_read);
        let idx = d.load_new(Expr::Reg(msg), 8);
        d.at(dloc_write);
        d.store(Expr::offset(msg, 8), 1u64, 8); // mark request in-progress
        d.at(dloc_read);
        for (k, h) in handler_procs.iter().enumerate() {
            d.begin_if(Cond::Eq(Expr::Reg(idx), Expr::Const(k as u64 + 1)));
            d.call(*h, vec![], None);
            d.end_if();
        }
        d.free(Expr::Reg(msg));
        pb.define_proc(dispatch, d);
    }

    // ---- pool worker (only used for Dispatch::ThreadPool) ----
    let qcell = pb.global("g_request_queue", 8);
    let pool_worker = {
        let loc = pb.loc("src/pool.cpp", 12, "pool_worker");
        let mut w = ProcBuilder::new(0);
        w.at(loc);
        let q = w.load_new(qcell, 8);
        let running = w.let_(1u64);
        let v = w.reg();
        w.begin_while(Cond::Ne(Expr::Reg(running), Expr::Const(0)));
        w.sync(SyncOp::QueueGet { queue: Expr::Reg(q), dst: v });
        w.begin_if(Cond::Eq(Expr::Reg(v), Expr::Const(0)));
        w.assign(running, 0u64);
        w.begin_else();
        w.call(dispatch, vec![Expr::Reg(v)], None);
        w.end_if();
        w.end_while();
        pb.add_proc("pool_worker", w)
    };

    // ---- main ----
    let requests = handlers * cfg.touches_per_site;
    let mloc = pb.loc("src/main.cpp", 20, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    // Module locks.
    for cell in &module_mtx {
        let mx = m.new_mutex();
        m.store(*cell, mx, 8);
    }
    // Site initialisation (configuration load, session table setup).
    for site in &sites {
        match &site.kind {
            SiteKind::Dtor { class, cell, pending, .. } => {
                let obj = classes.emit_new(&mut m, *class);
                m.store(*cell, Expr::Reg(obj), 8);
                m.store(*pending, cfg.touches_per_site as u64, 8);
            }
            SiteKind::Bus { cell, .. } => {
                let rep = string::emit_create(&mut m, 16);
                m.store(*cell, Expr::Reg(rep), 8);
            }
            SiteKind::Counter { .. }
            | SiteKind::Localtime { .. }
            | SiteKind::ReturnedRef { .. } => {}
        }
    }
    // Drive the request load.
    match cfg.dispatch {
        Dispatch::ThreadPerRequest => {
            let mut joins = Vec::with_capacity(requests);
            for hi in 0..handlers {
                for _ in 0..cfg.touches_per_site {
                    let msg = m.alloc(16u64);
                    m.store(Expr::Reg(msg), hi as u64 + 1, 8);
                    m.store(Expr::offset(msg, 8), 0u64, 8);
                    let h = m.spawn(dispatch, vec![Expr::Reg(msg)]);
                    joins.push(h);
                }
            }
            for h in joins {
                m.join(h);
            }
        }
        Dispatch::ThreadPool { workers } => {
            let workers = workers.max(2);
            let q = m.new_sync(SyncKind::Queue, 16u64);
            m.store(qcell, q, 8);
            let mut joins = Vec::with_capacity(workers);
            for _ in 0..workers {
                joins.push(m.spawn(pool_worker, vec![]));
            }
            for hi in 0..handlers {
                for _ in 0..cfg.touches_per_site {
                    let msg = m.alloc(16u64);
                    m.store(Expr::Reg(msg), hi as u64 + 1, 8);
                    m.store(Expr::offset(msg, 8), 0u64, 8);
                    m.sync(SyncOp::QueuePut { queue: Expr::Reg(q), value: Expr::Reg(msg) });
                }
            }
            for _ in 0..workers {
                m.sync(SyncOp::QueuePut { queue: Expr::Reg(q), value: Expr::Const(0) });
            }
            for h in joins {
                m.join(h);
            }
        }
    }
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);

    BuiltProxy { program: pb.finish(), sites: map, handlers, requests }
}

/// Emit one site's touch code into a handler.
fn emit_touch(
    pb: &mut ProgramBuilder,
    h: &mut ProcBuilder,
    classes: &ClassModel,
    site: &Site,
    cfg: &ProxyConfig,
    func: &str,
) {
    let loc = pb.loc(&site.file, site.line, func);
    h.at(loc);
    match &site.kind {
        SiteKind::Dtor { class, cell, pending, mutex_cell } => {
            // Locked use of the shared session object: virtual dispatch
            // (vptr read) + field update + reference-count-down. The last
            // user deletes it *outside* the lock — the destructor's vptr
            // writes are the unsynchronised accesses.
            let mx = h.load_new(*mutex_cell, 8);
            h.lock(mx);
            let obj = h.load_new(*cell, 8);
            let _vptr = classes.emit_virtual_dispatch(h, obj);
            let off = classes.field_offset(*class, classes.total_fields(*class) - 1);
            let f = h.load_new(Expr::offset(obj, off), 8);
            h.store(Expr::offset(obj, off), Expr::Reg(f).add(1u64.into()), 8);
            let p = h.load_new(*pending, 8);
            let p2 = h.let_(Expr::Reg(p).sub(1u64.into()));
            h.store(*pending, Expr::Reg(p2), 8);
            h.unlock(mx);
            h.begin_if(Cond::Eq(Expr::Reg(p2), Expr::Const(0)));
            classes.emit_delete(h, obj, *class, cfg.annotate_deletes, None);
            h.end_if();
        }
        SiteKind::Bus { cell, site: ssite } => {
            // Copy a shared configuration string into the request context.
            let rep = h.load_new(*cell, 8);
            let _copy = string::emit_copy(h, rep, *ssite);
        }
        SiteKind::Counter { cell } => {
            // Unlocked statistics update: a genuine data race.
            let v = h.load_new(*cell, 8);
            h.store(*cell, Expr::Reg(v).add(1u64.into()), 8);
        }
        SiteKind::Localtime { localtime_proc } => {
            // Timestamping a log line via the non-thread-safe libc call.
            let out = h.reg();
            h.call(*localtime_proc, vec![Expr::Const(1_183_000_000)], Some(out));
            let _tm = h.load_new(Expr::Reg(out), 8);
        }
        SiteKind::ReturnedRef { getter, data } => {
            // Fig 7: the getter locks internally, but hands back a
            // reference; the mutation happens outside any lock.
            let r = h.reg();
            h.call(*getter, vec![], Some(r));
            let _ = data;
            let v = h.load_new(Expr::Reg(r), 8);
            h.store(Expr::Reg(r), Expr::Reg(v).add(1u64.into()), 8);
        }
    }
}

fn camel(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().chain(c).collect(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::sched::RoundRobin;
    use vexec::tool::CountingTool;
    use vexec::vm::run_program;

    #[test]
    fn builds_and_runs_cleanly() {
        let cfg = ProxyConfig::default();
        let built = build_proxy(&cfg);
        assert_eq!(built.sites.count(SiteLabel::BusLockFp), 4);
        assert_eq!(built.sites.count(SiteLabel::DestructorFp), 6);
        assert_eq!(built.sites.count(SiteLabel::RealRace), 4);
        assert_eq!(built.sites.count(SiteLabel::HandoffFp), 1);
        let mut tool = CountingTool::new();
        let r = run_program(&built.program, &mut tool, &mut RoundRobin::new());
        assert!(r.termination.is_clean(), "{:?}", r.termination);
        assert_eq!(r.stats.threads_created as usize, built.requests + 1);
    }

    #[test]
    fn thread_pool_variant_runs_cleanly() {
        let cfg =
            ProxyConfig { dispatch: Dispatch::ThreadPool { workers: 4 }, ..ProxyConfig::default() };
        let built = build_proxy(&cfg);
        let mut tool = CountingTool::new();
        let r = run_program(&built.program, &mut tool, &mut RoundRobin::new());
        assert!(r.termination.is_clean(), "{:?}", r.termination);
        // workers + main, not per-request threads.
        assert_eq!(r.stats.threads_created, 5);
        assert!(tool.count("queue-put") >= built.requests as u64);
    }

    #[test]
    fn small_real_site_counts_have_no_specials() {
        let cfg = ProxyConfig { real_sites: 1, ..ProxyConfig::default() };
        let built = build_proxy(&cfg);
        assert_eq!(built.sites.count(SiteLabel::RealRace), 1);
    }

    #[test]
    #[should_panic(expected = "two concurrent touches")]
    fn rejects_single_touch() {
        build_proxy(&ProxyConfig { touches_per_site: 1, ..ProxyConfig::default() });
    }

    #[test]
    fn site_map_classifies() {
        let built = build_proxy(&ProxyConfig::default());
        assert_eq!(built.sites.classify("libc/time.c", 2201), Some(SiteLabel::RealRace));
        assert_eq!(built.sites.classify("nowhere.cpp", 1), None);
    }
}
