//! # sipsim — the application under test
//!
//! A synthetic model of the paper's subject: a multi-threaded SIP proxy
//! server for VoIP networks (§3.3), driven by SIPp-style request scenarios.
//! The crate provides:
//!
//! * a SIP request model and parser ([`sip`]) plus a seeded scenario
//!   generator ([`workload`]) standing in for the SIPp test bed;
//! * the proxy application builder ([`proxy`]) whose guest code contains a
//!   calibrated catalogue of warning sites in the paper's three categories
//!   (bus-lock FPs, destructor FPs, real races) with ground-truth labels;
//! * the eight evaluation test cases T1–T8 and the Fig 5/6 harness
//!   ([`testcases`]);
//! * the §4.1 true-positive bug catalogue ([`bugs`]);
//! * matched native/VM workloads for the §4.5 performance experiment
//!   ([`native`]).

pub mod bugs;
pub mod native;
pub mod proxy;
pub mod sip;
pub mod soak;
pub mod testcases;
pub mod workload;

pub use proxy::{build_proxy, BuiltProxy, Dispatch, ProxyConfig, SiteLabel, SiteMap};
pub use sip::{Method, SipRequest};
pub use soak::{
    build_soak_phase, phase_fault_plan, phase_sched_seed, run_phase, CatEntry, PhaseEnd,
    PhaseOutcome, PhaseStats, SoakLog,
};
pub use testcases::{
    reproduce_fig6, run_case, run_case_chaos, run_case_chaos_with, testcases, CaseResult,
    ChaosRunOutcome, Fig6Row, TestCase,
};
pub use workload::{
    apply_chaos, generate, phase_cells, ChaosSpec, DialogCell, DialogClass, FlowKind, ScenarioSpec,
    SoakSpec,
};
