//! Native-execution counterpart of the proxy workload, for the §4.5
//! performance experiment (E7): the paper reports the server running 8–10×
//! slower on the bare Valgrind VM and 20–30× slower with analysis, versus
//! native execution.
//!
//! [`native_workload`] runs the same logical work (locked session updates,
//! atomic refcount traffic, unlocked stats) on real OS threads;
//! [`vm_workload_program`] builds the equivalent guest program, which the
//! benchmark harness executes with `NullTool` (bare VM) and with each
//! detector attached.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::{Expr, Program};

/// Workload size parameters (shared by the native and VM variants).
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    pub threads: usize,
    pub iterations: u64,
    /// Per-iteration message-parse phase: each worker re-reads the two
    /// fields of its thread-private parse block this many times (header
    /// scan over a buffer that cannot change under its feet — the
    /// canonical redundant-access pattern the filter cache targets).
    pub parse_reads: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec { threads: 4, iterations: 2_000, parse_reads: 16 }
    }
}

/// Run the workload on real OS threads. Returns the final counter value
/// (used to keep the optimiser honest and to cross-check the VM variant).
pub fn native_workload(spec: WorkloadSpec) -> u64 {
    let session = Arc::new(Mutex::new(0u64));
    let refcount = Arc::new(AtomicU64::new(1));
    let handles: Vec<_> = (0..spec.threads)
        .map(|_| {
            let session = Arc::clone(&session);
            let refcount = Arc::clone(&refcount);
            std::thread::spawn(move || {
                // Thread-private parse block (header kind + length).
                let parse_block = [0u64, 0u64];
                for _ in 0..spec.iterations {
                    {
                        let mut s = session.lock().unwrap();
                        *s += 1;
                    }
                    // COW-string-style refcount churn (bus-locked RMW).
                    refcount.fetch_add(1, Ordering::SeqCst);
                    refcount.fetch_sub(1, Ordering::SeqCst);
                    // Parse phase: repeated reads of the private header.
                    for _ in 0..spec.parse_reads {
                        std::hint::black_box(parse_block[0]);
                        std::hint::black_box(parse_block[1]);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let v = *session.lock().unwrap();
    assert_eq!(v, spec.threads as u64 * spec.iterations);
    v
}

/// The equivalent guest program.
pub fn vm_workload_program(spec: WorkloadSpec) -> Program {
    let mut pb = ProgramBuilder::new();
    let session = pb.global("g_session", 8);
    let refcount = pb.global("g_refcount", 8);
    let m_cell = pb.global("g_mutex", 8);
    // One 16-byte thread-private parse block per worker (header kind +
    // length), handed to each worker by address. Only its owner ever
    // touches it, so the repeated header reads below are exactly the
    // redundant accesses a filter cache can elide.
    let stats = pb.global("g_parse", (spec.threads.max(1) as u64) * 16);

    let wloc = pb.loc("workload.cpp", 10, "worker");
    let ploc = pb.loc("workload.cpp", 18, "worker");
    let mut w = ProcBuilder::new(1);
    let block = w.param(0);
    w.at(wloc);
    let mx = w.load_new(m_cell, 8);
    w.begin_repeat(spec.iterations);
    w.lock(mx);
    let v = w.load_new(session, 8);
    w.store(session, Expr::Reg(v).add(1u64.into()), 8);
    w.unlock(mx);
    w.atomic_rmw(None, Expr::Global(refcount), 1u64, 8);
    w.atomic_rmw(None, Expr::Global(refcount), (-1i64) as u64, 8);
    // Parse phase: scan the private header repeatedly between sync ops.
    // Unrolled 4× so the loop-counter bookkeeping doesn't dwarf the access
    // events themselves (the native compiler unrolls the matching loop
    // too) — the remainder pairs are emitted straight-line after the loop.
    w.at(ploc);
    if spec.parse_reads >= 4 {
        w.begin_repeat(spec.parse_reads / 4);
        for _ in 0..4 {
            w.load_new(Expr::Reg(block), 8);
            w.load_new(Expr::Reg(block).add(Expr::Const(8)), 8);
        }
        w.end_repeat();
    }
    for _ in 0..spec.parse_reads % 4 {
        w.load_new(Expr::Reg(block), 8);
        w.load_new(Expr::Reg(block).add(Expr::Const(8)), 8);
    }
    w.at(wloc);
    w.end_repeat();
    let worker = pb.add_proc("worker", w);

    let mloc = pb.loc("workload.cpp", 30, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let mx = m.new_mutex();
    m.store(m_cell, mx, 8);
    m.store(refcount, 1u64, 8);
    let mut joins = Vec::new();
    for i in 0..spec.threads {
        let block = Expr::Global(stats).add(Expr::Const(i as u64 * 16));
        joins.push(m.spawn(worker, vec![block]));
    }
    for h in joins {
        m.join(h);
    }
    // Read the result under the lock: once a location is SHARED-MODIFIED,
    // the Eraser state machine never reverts it, so an unlocked read here
    // would (correctly, per the algorithm) be reported.
    m.lock(mx);
    let fin = m.load_new(session, 8);
    m.unlock(mx);
    m.assert_eq(fin, spec.threads as u64 * spec.iterations, "all increments landed");
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::sched::RoundRobin;
    use vexec::tool::NullTool;
    use vexec::vm::run_program;

    #[test]
    fn native_workload_computes_expected_total() {
        let spec = WorkloadSpec { threads: 3, iterations: 100, parse_reads: 8 };
        assert_eq!(native_workload(spec), 300);
    }

    #[test]
    fn vm_workload_matches_native_semantics() {
        let spec = WorkloadSpec { threads: 3, iterations: 50, parse_reads: 8 };
        let prog = vm_workload_program(spec);
        let mut tool = NullTool;
        let r = run_program(&prog, &mut tool, &mut RoundRobin::new());
        assert!(r.termination.is_clean(), "{:?}", r.termination);
    }

    #[test]
    fn vm_workload_is_race_free_under_detector() {
        use helgrind_core::{DetectorConfig, EraserDetector};
        let spec = WorkloadSpec { threads: 3, iterations: 20, parse_reads: 8 };
        let prog = vm_workload_program(spec);
        let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
        run_program(&prog, &mut det, &mut RoundRobin::new()).expect_clean();
        assert_eq!(det.sink.race_location_count(), 0, "{:?}", det.sink.reports());
    }

    #[test]
    fn vm_workload_parse_phase_is_filterable() {
        use helgrind_core::{DetectorConfig, EraserDetector};
        use vexec::filter::FilterTool;
        let spec = WorkloadSpec { threads: 3, iterations: 20, parse_reads: 8 };
        let prog = vm_workload_program(spec);
        let mut filtered = FilterTool::new(EraserDetector::new(DetectorConfig::hwlc_dr()));
        run_program(&prog, &mut filtered, &mut RoundRobin::new()).expect_clean();
        let (det, stats) = filtered.into_parts();
        assert_eq!(det.sink.race_location_count(), 0, "{:?}", det.sink.reports());
        // The parse phase exists precisely so the filter has something to
        // elide: (parse_reads - 1) of each header-read pair per iteration.
        assert!(
            stats.hit_rate() > 0.4,
            "expected a warm filter on the bench workload, got {:?} (hit rate {:.3})",
            stats,
            stats.hit_rate()
        );
    }
}
