//! The §4.1 true-positive catalogue: each real bug class the paper found
//! in the server, as a small standalone guest program with a known
//! expected warning (E8). These are the positives that must *survive* the
//! HWLC+DR improvements.

use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::{Expr, Program};

/// A catalogued bug: the program, the paper section it comes from, and the
/// function name the warning should appear in.
pub struct BugScenario {
    pub name: &'static str,
    pub section: &'static str,
    pub program: Program,
    /// Function expected to appear in at least one race report.
    pub expected_func: &'static str,
    /// Thread priority order that exposes the bug deterministically
    /// (passed to `PriorityOrder`); `None` = any schedule.
    pub schedule: Option<Vec<u32>>,
}

/// Fig 7 / §4.1.2: a getter that locks internally but returns a reference
/// to the protected attribute; callers mutate it unlocked.
pub fn returned_reference() -> BugScenario {
    let mut pb = ProgramBuilder::new();
    let data = pb.global("m_DomainData", 8);
    let m_cell = pb.global("m_pMutex", 8);

    let gloc = pb.loc("ServerModulesManagerImpl.cpp", 88, "getDomainData");
    let mut g = ProcBuilder::new(0);
    g.at(gloc);
    let mx = g.load_new(m_cell, 8);
    g.lock(mx);
    g.unlock(mx);
    g.ret(Some(Expr::Global(data)));
    let getter = pb.add_proc("getDomainData", g);

    let wloc = pb.loc("ServerModulesManagerImpl.cpp", 140, "updateDomain");
    let mut w = ProcBuilder::new(0);
    w.at(wloc);
    let r = w.reg();
    w.call(getter, vec![], Some(r));
    let v = w.load_new(Expr::Reg(r), 8);
    w.store(Expr::Reg(r), Expr::Reg(v).add(1u64.into()), 8);
    let worker = pb.add_proc("updateDomain", w);

    let mloc = pb.loc("main.cpp", 5, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let mx = m.new_mutex();
    m.store(m_cell, mx, 8);
    let h1 = m.spawn(worker, vec![]);
    let h2 = m.spawn(worker, vec![]);
    m.join(h1);
    m.join(h2);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    BugScenario {
        name: "returned-reference",
        section: "§4.1.2 / Fig 7",
        program: pb.finish(),
        expected_func: "updateDomain",
        schedule: None,
    }
}

/// §4.1.1: a thread is started before the data structure it uses is fully
/// initialised (the main thread finishes initialisation after the spawn).
pub fn init_order() -> BugScenario {
    let mut pb = ProgramBuilder::new();
    let table = pb.global("g_routing_table", 8);

    let wloc = pb.loc("router.cpp", 30, "routing_worker");
    let mut w = ProcBuilder::new(0);
    w.at(wloc);
    let _v = w.load_new(table, 8); // may read before init completes
    let worker = pb.add_proc("routing_worker", w);

    let mloc = pb.loc("router.cpp", 60, "Router::start");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let h = m.spawn(worker, vec![]);
    m.store(table, 0xCAFE_u64, 8); // initialisation AFTER the spawn
    m.join(h);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    BugScenario {
        name: "init-order",
        section: "§4.1.1",
        program: pb.finish(),
        expected_func: "Router::start",
        // Worker's read must land before main's late write.
        schedule: Some(vec![1, 0]),
    }
}

/// §4.1.1: on shutdown, a data structure is destroyed while a thread still
/// uses it.
pub fn shutdown_order() -> BugScenario {
    let mut pb = ProgramBuilder::new();
    let stats = pb.global("g_stats", 8);
    let stop = pb.global("g_stop", 8);

    let wloc = pb.loc("stats.cpp", 20, "stats_worker");
    let mut w = ProcBuilder::new(0);
    w.at(wloc);
    w.begin_repeat(3u64);
    let v = w.load_new(stats, 8);
    w.store(stats, Expr::Reg(v).add(1u64.into()), 8);
    w.yield_();
    w.end_repeat();
    w.store(stop, 1u64, 8);
    let worker = pb.add_proc("stats_worker", w);

    let mloc = pb.loc("stats.cpp", 50, "Server::shutdown");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let h = m.spawn(worker, vec![]);
    // Shutdown "destroys" the stats structure without joining first.
    m.store(stats, 0u64, 8);
    m.join(h);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    BugScenario {
        name: "shutdown-order",
        section: "§4.1.1",
        program: pb.finish(),
        expected_func: "Server::shutdown",
        schedule: Some(vec![1, 0]),
    }
}

/// §4.1.3: `localtime` and friends return pointers to static data.
pub fn unsafe_libc() -> BugScenario {
    let mut pb = ProgramBuilder::new();
    let buf = pb.global("static_tm", 8);

    let lloc = pb.loc("libc/time.c", 2201, "localtime");
    let mut l = ProcBuilder::new(1);
    l.at(lloc);
    l.store(buf, Expr::Reg(l.param(0)), 8);
    l.ret(Some(Expr::Global(buf)));
    let localtime = pb.add_proc("localtime", l);

    let wloc = pb.loc("logger.cpp", 77, "log_line");
    let mut w = ProcBuilder::new(0);
    w.at(wloc);
    let r = w.reg();
    w.call(localtime, vec![Expr::Const(1_183_000_000)], Some(r));
    let _tm = w.load_new(Expr::Reg(r), 8);
    let worker = pb.add_proc("log_line", w);

    let mloc = pb.loc("main.cpp", 5, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let h1 = m.spawn(worker, vec![]);
    let h2 = m.spawn(worker, vec![]);
    m.join(h1);
    m.join(h2);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    BugScenario {
        name: "unsafe-libc",
        section: "§4.1.3",
        program: pb.finish(),
        expected_func: "localtime",
        schedule: None,
    }
}

/// §4: "One of the first reported data races was in the application's
/// deadlock detection code" — a watchdog that scans lock-owner bookkeeping
/// without synchronisation.
pub fn racy_deadlock_detector() -> BugScenario {
    let mut pb = ProgramBuilder::new();
    let owner_table = pb.global("g_lock_owner", 8);
    let m_cell = pb.global("g_mutex", 8);

    // Workers record the owner in a side table the watchdog reads — the
    // bookkeeping writes are inside the critical section, but the watchdog
    // reads without the lock.
    let wloc = pb.loc("dlock.cpp", 15, "locked_work");
    let mut w = ProcBuilder::new(0);
    w.at(wloc);
    let mx = w.load_new(m_cell, 8);
    w.begin_repeat(3u64);
    w.lock(mx);
    w.store(owner_table, 1u64, 8);
    w.store(owner_table, 0u64, 8);
    w.unlock(mx);
    w.end_repeat();
    let worker = pb.add_proc("locked_work", w);

    let dloc = pb.loc("dlock.cpp", 40, "deadlock_watchdog");
    let mut d = ProcBuilder::new(0);
    d.at(dloc);
    d.begin_repeat(3u64);
    let _o = d.load_new(owner_table, 8); // unlocked scan
    d.yield_();
    d.end_repeat();
    let watchdog = pb.add_proc("deadlock_watchdog", d);

    let mloc = pb.loc("main.cpp", 5, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let mx = m.new_mutex();
    m.store(m_cell, mx, 8);
    let h1 = m.spawn(worker, vec![]);
    let h2 = m.spawn(watchdog, vec![]);
    m.join(h1);
    m.join(h2);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    BugScenario {
        name: "racy-deadlock-detector",
        section: "§4.1",
        program: pb.finish(),
        // The unlocked scan in the watchdog is where the lockset empties.
        expected_func: "deadlock_watchdog",
        schedule: None,
    }
}

/// All catalogued true-positive scenarios.
pub fn all_bugs() -> Vec<BugScenario> {
    vec![
        returned_reference(),
        init_order(),
        shutdown_order(),
        unsafe_libc(),
        racy_deadlock_detector(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use helgrind_core::{DetectorConfig, EraserDetector};
    use vexec::sched::{PriorityOrder, RoundRobin, Scheduler};
    use vexec::vm::run_program;
    use vexec::ThreadId;

    #[test]
    fn every_bug_detected_under_hwlc_dr() {
        // The whole point of the improvements: real bugs keep being found.
        for bug in all_bugs() {
            let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
            let mut sched: Box<dyn Scheduler> = match &bug.schedule {
                Some(order) => {
                    Box::new(PriorityOrder::new(order.iter().map(|&t| ThreadId(t)).collect()))
                }
                None => Box::new(RoundRobin::new()),
            };
            let r = run_program(&bug.program, &mut det, sched.as_mut());
            assert!(r.termination.is_clean(), "{}: {:?}", bug.name, r.termination);
            assert!(
                det.sink.race_location_count() >= 1,
                "{} ({}) must be detected",
                bug.name,
                bug.section
            );
            assert!(
                det.sink.reports().iter().any(|rep| rep
                    .stack
                    .iter()
                    .any(|f| f.func.contains(bug.expected_func))
                    || rep.func.contains(bug.expected_func)),
                "{}: expected a warning involving {}, got {:#?}",
                bug.name,
                bug.expected_func,
                det.sink.reports()
            );
        }
    }

    #[test]
    fn watchdog_race_is_schedule_independent_for_lockset() {
        // The lockset algorithm finds the watchdog race regardless of
        // whether the scan interleaves with the critical section.
        for seed in 0..5 {
            let bug = racy_deadlock_detector();
            let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
            let mut sched = vexec::sched::SeededRandom::new(seed);
            run_program(&bug.program, &mut det, &mut sched).expect_clean();
            assert!(det.sink.race_location_count() >= 1, "seed {seed}");
        }
    }
}
