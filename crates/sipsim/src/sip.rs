//! A lightweight SIP (RFC 3261 subset) message model: the traffic the
//! paper's application under test processes. The workload generator
//! renders real SIP request text and the test harness parses it back —
//! the guest proxy model consumes the classified requests.

use std::fmt;

/// SIP request methods used by the test scenarios.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Method {
    Register,
    Invite,
    Ack,
    Bye,
    Cancel,
    Options,
}

impl Method {
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Register => "REGISTER",
            Method::Invite => "INVITE",
            Method::Ack => "ACK",
            Method::Bye => "BYE",
            Method::Cancel => "CANCEL",
            Method::Options => "OPTIONS",
        }
    }

    pub fn parse(s: &str) -> Option<Method> {
        Some(match s {
            "REGISTER" => Method::Register,
            "INVITE" => Method::Invite,
            "ACK" => Method::Ack,
            "BYE" => Method::Bye,
            "CANCEL" => Method::Cancel,
            "OPTIONS" => Method::Options,
            _ => return None,
        })
    }

    pub const ALL: [Method; 6] = [
        Method::Register,
        Method::Invite,
        Method::Ack,
        Method::Bye,
        Method::Cancel,
        Method::Options,
    ];
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A SIP request (we model requests only; responses stay inside the guest
/// proxy model).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SipRequest {
    pub method: Method,
    pub uri: String,
    pub via_branch: String,
    pub from: String,
    pub from_tag: String,
    pub to: String,
    pub call_id: String,
    pub cseq: u32,
    pub body: Option<String>,
}

/// Errors from [`SipRequest::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SipParseError {
    Empty,
    BadRequestLine(String),
    UnknownMethod(String),
    BadHeader(String),
    MissingHeader(&'static str),
    BadCseq(String),
}

impl fmt::Display for SipParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SipParseError::Empty => write!(f, "empty message"),
            SipParseError::BadRequestLine(l) => write!(f, "bad request line: {l}"),
            SipParseError::UnknownMethod(m) => write!(f, "unknown method: {m}"),
            SipParseError::BadHeader(h) => write!(f, "bad header: {h}"),
            SipParseError::MissingHeader(h) => write!(f, "missing header: {h}"),
            SipParseError::BadCseq(c) => write!(f, "bad CSeq: {c}"),
        }
    }
}

impl SipRequest {
    /// Render to wire format (CRLF line endings, RFC 3261 style).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!("{} {} SIP/2.0\r\n", self.method, self.uri));
        out.push_str(&format!("Via: SIP/2.0/UDP proxy.example.com;branch={}\r\n", self.via_branch));
        out.push_str(&format!("From: <{}>;tag={}\r\n", self.from, self.from_tag));
        out.push_str(&format!("To: <{}>\r\n", self.to));
        out.push_str(&format!("Call-ID: {}\r\n", self.call_id));
        out.push_str(&format!("CSeq: {} {}\r\n", self.cseq, self.method));
        out.push_str("Max-Forwards: 70\r\n");
        match &self.body {
            Some(b) => {
                out.push_str("Content-Type: application/sdp\r\n");
                out.push_str(&format!("Content-Length: {}\r\n\r\n", b.len()));
                out.push_str(b);
            }
            None => out.push_str("Content-Length: 0\r\n\r\n"),
        }
        out
    }

    /// Parse from wire format.
    pub fn parse(text: &str) -> Result<SipRequest, SipParseError> {
        let mut lines = text.split("\r\n");
        let request_line = lines.next().ok_or(SipParseError::Empty)?;
        if request_line.is_empty() {
            return Err(SipParseError::Empty);
        }
        let mut parts = request_line.split(' ');
        let method_s = parts.next().unwrap_or("");
        let uri =
            parts.next().ok_or_else(|| SipParseError::BadRequestLine(request_line.to_string()))?;
        let version = parts.next();
        if version != Some("SIP/2.0") {
            return Err(SipParseError::BadRequestLine(request_line.to_string()));
        }
        let method = Method::parse(method_s)
            .ok_or_else(|| SipParseError::UnknownMethod(method_s.to_string()))?;

        let mut via_branch = None;
        let mut from = None;
        let mut from_tag = None;
        let mut to = None;
        let mut call_id = None;
        let mut cseq = None;
        let mut content_length = 0usize;
        for line in lines.by_ref() {
            if line.is_empty() {
                break; // end of headers
            }
            let (name, value) =
                line.split_once(':').ok_or_else(|| SipParseError::BadHeader(line.to_string()))?;
            let value = value.trim();
            match name.trim() {
                "Via" => {
                    via_branch = value
                        .split("branch=")
                        .nth(1)
                        .map(|b| b.split(';').next().unwrap_or(b).to_string());
                }
                "From" => {
                    let (addr, params) = match value.split_once(";tag=") {
                        Some((a, t)) => (a, Some(t)),
                        None => (value, None),
                    };
                    from = Some(addr.trim_matches(['<', '>', ' ']).to_string());
                    from_tag = params.map(|t| t.to_string());
                }
                "To" => to = Some(value.trim_matches(['<', '>', ' ']).to_string()),
                "Call-ID" => call_id = Some(value.to_string()),
                "CSeq" => {
                    let num = value.split(' ').next().unwrap_or("");
                    cseq =
                        Some(num.parse().map_err(|_| SipParseError::BadCseq(value.to_string()))?);
                }
                "Content-Length" => {
                    content_length = value.parse().unwrap_or(0);
                }
                _ => {}
            }
        }
        let rest: Vec<&str> = lines.collect();
        let body_text = rest.join("\r\n");
        let body = if content_length > 0 && !body_text.is_empty() { Some(body_text) } else { None };
        Ok(SipRequest {
            method,
            uri: uri.to_string(),
            via_branch: via_branch.ok_or(SipParseError::MissingHeader("Via"))?,
            from: from.ok_or(SipParseError::MissingHeader("From"))?,
            from_tag: from_tag.unwrap_or_default(),
            to: to.ok_or(SipParseError::MissingHeader("To"))?,
            call_id: call_id.ok_or(SipParseError::MissingHeader("Call-ID"))?,
            cseq: cseq.ok_or(SipParseError::MissingHeader("CSeq"))?,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(method: Method) -> SipRequest {
        SipRequest {
            method,
            uri: "sip:bob@example.com".into(),
            via_branch: "z9hG4bK776asdhds".into(),
            from: "sip:alice@example.com".into(),
            from_tag: "1928301774".into(),
            to: "sip:bob@example.com".into(),
            call_id: "a84b4c76e66710@pc33.example.com".into(),
            cseq: 314159,
            body: None,
        }
    }

    #[test]
    fn render_parse_roundtrip_all_methods() {
        for m in Method::ALL {
            let req = sample(m);
            let text = req.render();
            let back = SipRequest::parse(&text).unwrap();
            assert_eq!(req, back, "roundtrip for {m}");
        }
    }

    #[test]
    fn roundtrip_with_body() {
        let mut req = sample(Method::Invite);
        req.body = Some("v=0\r\no=alice 2890844526 IN IP4 127.0.0.1".into());
        let back = SipRequest::parse(&req.render()).unwrap();
        assert_eq!(back.body, req.body);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(SipRequest::parse(""), Err(SipParseError::Empty));
        assert!(matches!(
            SipRequest::parse("FOO sip:x SIP/2.0\r\n\r\n"),
            Err(SipParseError::UnknownMethod(_))
        ));
        assert!(matches!(
            SipRequest::parse("INVITE\r\n\r\n"),
            Err(SipParseError::BadRequestLine(_))
        ));
        assert!(matches!(
            SipRequest::parse("INVITE sip:x HTTP/1.1\r\n\r\n"),
            Err(SipParseError::BadRequestLine(_))
        ));
        let no_callid = "INVITE sip:x SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9\r\nFrom: <a>;tag=1\r\nTo: <b>\r\nCSeq: 1 INVITE\r\nContent-Length: 0\r\n\r\n";
        assert_eq!(SipRequest::parse(no_callid), Err(SipParseError::MissingHeader("Call-ID")));
    }

    #[test]
    fn method_parse_rejects_lowercase() {
        assert_eq!(Method::parse("invite"), None);
        assert_eq!(Method::parse("INVITE"), Some(Method::Invite));
    }
}
