//! The eight test cases of the paper's evaluation (Fig 5/6) and the
//! harness that runs one case under a detector configuration.
//!
//! The paper's application is a proprietary 500 kLOC server; what its
//! evaluation reports per test case is the number of distinct warning
//! locations in three categories (hardware-bus-lock FPs, destructor FPs,
//! and correctly reported races — Fig 5's stacked bars). Each preset below
//! instantiates a synthetic proxy whose *site inventory* matches the
//! paper's per-case magnitudes; which sites actually warn under each
//! configuration is computed by the detectors, not assumed. See DESIGN.md
//! §2 for the substitution argument.

use crate::proxy::{build_proxy, BuiltProxy, Dispatch, ProxyConfig, SiteLabel};
use crate::workload::ScenarioSpec;
use helgrind_core::report::ReportKind;
use helgrind_core::{DetectorConfig, EraserDetector};
use vexec::faults::{FaultPlan, FaultStats};
use vexec::filter::FilterTool;
use vexec::sched::{RoundRobin, SeededRandom};
use vexec::vm::{run_flat, run_program, Termination, VmOptions};

/// One evaluation test case.
#[derive(Clone, Debug)]
pub struct TestCase {
    pub name: &'static str,
    /// The SIPp scenario this case corresponds to (request mix).
    pub scenario: ScenarioSpec,
    /// Site inventory (bus-lock FPs, destructor FPs, real races).
    pub bus_sites: usize,
    pub dtor_sites: usize,
    pub real_sites: usize,
    /// Paper's Fig 6 row: (Original, HWLC, HWLC+DR).
    pub paper_counts: (usize, usize, usize),
}

impl TestCase {
    /// Proxy configuration for this case.
    pub fn proxy_config(&self) -> ProxyConfig {
        ProxyConfig {
            bus_sites: self.bus_sites,
            dtor_sites: self.dtor_sites,
            real_sites: self.real_sites,
            touches_per_site: 2,
            sites_per_handler: 12,
            dispatch: Dispatch::ThreadPerRequest,
            annotate_deletes: true,
        }
    }

    /// Build the guest program (deterministic).
    pub fn build(&self) -> BuiltProxy {
        build_proxy(&self.proxy_config())
    }
}

/// The eight presets. Site inventories are derived from Fig 6:
/// bus = Original − HWLC, dtor = HWLC − (HWLC+DR), real = HWLC+DR.
/// One row of the preset table: (name, registers, calls, cancelled,
/// options, (orig, hwlc, hwlc_dr)).
type PresetRow = (&'static str, usize, usize, usize, usize, (usize, usize, usize));

pub fn testcases() -> Vec<TestCase> {
    let rows: [PresetRow; 8] = [
        ("T1", 40, 30, 0, 10, (483, 448, 120)),
        ("T2", 60, 0, 0, 20, (319, 215, 60)),
        ("T3", 30, 10, 0, 0, (252, 194, 49)),
        ("T4", 40, 40, 10, 10, (576, 490, 149)),
        ("T5", 50, 45, 10, 15, (631, 547, 146)),
        ("T6", 20, 60, 0, 5, (620, 604, 181)),
        ("T7", 30, 20, 5, 10, (327, 269, 115)),
        ("T8", 35, 25, 0, 15, (357, 270, 78)),
    ];
    rows.iter()
        .enumerate()
        .map(|(i, &(name, registers, calls, cancelled_calls, options, paper))| {
            let (orig, hwlc, hwlc_dr) = paper;
            assert!(orig >= hwlc && hwlc >= hwlc_dr);
            TestCase {
                name,
                scenario: ScenarioSpec {
                    registers,
                    calls,
                    cancelled_calls,
                    options,
                    seed: 0x51ED_2007 ^ i as u64,
                    ..Default::default()
                },
                bus_sites: orig - hwlc,
                dtor_sites: hwlc - hwlc_dr,
                real_sites: hwlc_dr,
                paper_counts: paper,
            }
        })
        .collect()
}

/// Result of running one case under one configuration.
#[derive(Clone, Debug, Default)]
pub struct CaseResult {
    /// Distinct race-warning locations (the Fig 6 metric).
    pub locations: usize,
    pub bus_fp: usize,
    pub dtor_fp: usize,
    pub real: usize,
    pub handoff_fp: usize,
    /// Warnings at locations not in the site map (should be zero).
    pub unexpected: usize,
    /// Lock-order cycle warnings (not part of the Fig 6 counts).
    pub lock_order: usize,
}

/// Run a built proxy under a detector configuration and attribute every
/// warning to its ground-truth label.
pub fn run_case(built: &BuiltProxy, cfg: DetectorConfig) -> CaseResult {
    let mut det = EraserDetector::new(cfg);
    let r = run_program(&built.program, &mut det, &mut RoundRobin::new());
    assert!(r.termination.is_clean(), "proxy run failed: {:?}", r.termination);
    let mut out = CaseResult::default();
    for rep in det.sink.reports() {
        if rep.kind == ReportKind::LockOrderCycle {
            out.lock_order += 1;
            continue;
        }
        out.locations += 1;
        match built.sites.classify(&rep.file, rep.line) {
            Some(SiteLabel::BusLockFp) => out.bus_fp += 1,
            Some(SiteLabel::DestructorFp) => out.dtor_fp += 1,
            Some(SiteLabel::RealRace) => out.real += 1,
            Some(SiteLabel::HandoffFp) => out.handoff_fp += 1,
            None => out.unexpected += 1,
        }
    }
    out
}

/// Outcome of one chaos run: a test case executed under an injected
/// [`FaultPlan`] and a seeded schedule, *without* assuming the run stays
/// clean — faults legitimately produce deadlocks (killed thread holding a
/// lock), guest errors and extra warnings. The resilience invariants the
/// chaos harness checks are about the *detector*, not the guest: no host
/// panic, deterministic fingerprint per (plan, schedule), real races still
/// found.
#[derive(Clone, Debug, Default)]
pub struct ChaosRunOutcome {
    pub clean: bool,
    pub deadlocked: bool,
    /// Rendered guest fault, when the run ended with one.
    pub guest_error: Option<String>,
    pub fuel_exhausted: bool,
    /// Distinct warning locations classified as real races.
    pub real_hits: usize,
    /// Distinct race-warning locations of any class.
    pub locations: usize,
    /// True when a detector budget cap degraded the results.
    pub truncated: bool,
    /// What the injector actually did.
    pub fault_stats: Option<FaultStats>,
    /// FNV-1a hash over termination + every report + fault stats; two runs
    /// with the same (case, cfg, plan, schedule seed) must agree exactly.
    pub fingerprint: u64,
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Run a built proxy under fault injection with a seeded-random schedule.
/// Tolerates every termination kind; panics only propagate from genuine
/// detector/VM bugs (which is what the chaos harness exists to catch).
/// Runs with the redundant-access filter enabled; fingerprints are
/// filter-invariant (see `run_case_chaos_with`).
pub fn run_case_chaos(
    built: &BuiltProxy,
    cfg: DetectorConfig,
    plan: FaultPlan,
    sched_seed: u64,
    max_slots: Option<u64>,
) -> ChaosRunOutcome {
    run_case_chaos_with(built, cfg, plan, sched_seed, max_slots, true)
}

/// [`run_case_chaos`] with explicit control over the redundant-access
/// filter cache. The filter is report-preserving, so `use_filter` must not
/// change the outcome — the chaos fingerprint doubles as the equivalence
/// evidence under fault injection, and a dedicated test asserts on/off
/// equality.
pub fn run_case_chaos_with(
    built: &BuiltProxy,
    cfg: DetectorConfig,
    plan: FaultPlan,
    sched_seed: u64,
    max_slots: Option<u64>,
    use_filter: bool,
) -> ChaosRunOutcome {
    let flat = built.program.lower();
    let mut sched = SeededRandom::new(sched_seed);
    let opts = VmOptions {
        faults: Some(plan),
        max_slots: max_slots.unwrap_or(VmOptions::default().max_slots),
        ..Default::default()
    };
    let (r, det) = if use_filter {
        let mut tool = FilterTool::new(EraserDetector::new(cfg));
        let r = run_flat(&flat, &mut tool, &mut sched, opts);
        (r, tool.into_parts().0)
    } else {
        let mut det = EraserDetector::new(cfg);
        let r = run_flat(&flat, &mut det, &mut sched, opts);
        (r, det)
    };

    let mut out = ChaosRunOutcome {
        clean: r.termination.is_clean(),
        deadlocked: matches!(r.termination, Termination::Deadlock(_)),
        guest_error: det.guest_fault.clone(),
        fuel_exhausted: matches!(r.termination, Termination::FuelExhausted),
        truncated: det.truncated(),
        fault_stats: r.faults,
        ..Default::default()
    };

    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fnv1a(&mut h, format!("{:?}", r.termination).as_bytes());
    for rep in det.sink.reports() {
        if matches!(rep.kind, ReportKind::RaceRead | ReportKind::RaceWrite) {
            match built.sites.classify(&rep.file, rep.line) {
                Some(SiteLabel::RealRace) => {
                    out.real_hits += 1;
                    out.locations += 1;
                }
                Some(_) => out.locations += 1,
                None => {}
            }
        }
        fnv1a(&mut h, rep.kind.code().as_bytes());
        fnv1a(&mut h, rep.file.as_bytes());
        fnv1a(&mut h, &rep.line.to_le_bytes());
        fnv1a(&mut h, rep.func.as_bytes());
        fnv1a(&mut h, &rep.addr.to_le_bytes());
        fnv1a(&mut h, rep.details.as_bytes());
    }
    if let Some(fs) = &r.faults {
        fnv1a(&mut h, format!("{fs:?}").as_bytes());
    }
    out.fingerprint = h;
    out
}

/// One row of the reproduced Fig 6 table.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    pub name: &'static str,
    pub original: CaseResult,
    pub hwlc: CaseResult,
    pub hwlc_dr: CaseResult,
    pub paper: (usize, usize, usize),
}

impl Fig6Row {
    /// Fraction of the Original warnings removed by HWLC+DR (the paper's
    /// 65–81 % headline).
    pub fn fp_reduction(&self) -> f64 {
        if self.original.locations == 0 {
            return 0.0;
        }
        1.0 - self.hwlc_dr.locations as f64 / self.original.locations as f64
    }
}

/// Reproduce the full Fig 6 table (and Fig 5 series).
pub fn reproduce_fig6() -> Vec<Fig6Row> {
    testcases()
        .into_iter()
        .map(|tc| {
            let built = tc.build();
            Fig6Row {
                name: tc.name,
                original: run_case(&built, DetectorConfig::original()),
                hwlc: run_case(&built, DetectorConfig::hwlc()),
                hwlc_dr: run_case(&built, DetectorConfig::hwlc_dr()),
                paper: tc.paper_counts,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_reconstruct_paper_totals() {
        for tc in testcases() {
            let (orig, hwlc, hwlc_dr) = tc.paper_counts;
            assert_eq!(tc.bus_sites + tc.dtor_sites + tc.real_sites, orig, "{}", tc.name);
            assert_eq!(tc.dtor_sites + tc.real_sites, hwlc, "{}", tc.name);
            assert_eq!(tc.real_sites, hwlc_dr, "{}", tc.name);
            assert!(tc.scenario.request_count() > 0);
        }
    }

    #[test]
    fn t3_reproduces_its_fig6_row_exactly() {
        // The smallest case end-to-end: every site category must be
        // classified and counted exactly as in the paper.
        let tc = &testcases()[2];
        assert_eq!(tc.name, "T3");
        let built = tc.build();
        let original = run_case(&built, DetectorConfig::original());
        let hwlc = run_case(&built, DetectorConfig::hwlc());
        let hwlc_dr = run_case(&built, DetectorConfig::hwlc_dr());
        assert_eq!(original.unexpected, 0, "{original:?}");
        assert_eq!(hwlc.unexpected, 0, "{hwlc:?}");
        assert_eq!(hwlc_dr.unexpected, 0, "{hwlc_dr:?}");
        assert_eq!(original.locations, 252);
        assert_eq!(hwlc.locations, 194);
        assert_eq!(hwlc_dr.locations, 49);
        assert_eq!(original.bus_fp, 58);
        assert_eq!(original.dtor_fp, 145);
        assert_eq!(original.real, 49);
        assert_eq!(hwlc.bus_fp, 0);
        assert_eq!(hwlc_dr.dtor_fp, 0);
        assert_eq!(hwlc_dr.real, 49);
    }

    #[test]
    fn chaos_run_is_deterministic_and_tolerates_faults() {
        let tc = &testcases()[2]; // T3, the smallest case
        let built = tc.build();
        let plan = FaultPlan::from_seed(0xC0FFEE);
        let a = run_case_chaos(&built, DetectorConfig::hwlc_dr(), plan, 7, None);
        let b = run_case_chaos(&built, DetectorConfig::hwlc_dr(), plan, 7, None);
        assert_eq!(a.fingerprint, b.fingerprint, "{a:?} vs {b:?}");
        assert_eq!(a.real_hits, b.real_hits);
        // A disabled plan under the same schedule behaves like run_case.
        let calm =
            run_case_chaos(&built, DetectorConfig::hwlc_dr(), FaultPlan::disabled(), 7, None);
        assert!(calm.clean, "{calm:?}");
        assert!(calm.real_hits > 0);
        assert_eq!(calm.fault_stats.map(|f| f.total()), Some(0));
    }

    #[test]
    fn chaos_fingerprint_is_filter_invariant() {
        // The filter elides events before the detector sees them; under a
        // fault plan (killed threads, failed locks, failed allocs) the
        // fingerprint — termination, every report field, fault stats —
        // must still match the unfiltered run bit for bit.
        let tc = &testcases()[2]; // T3, the smallest case
        let built = tc.build();
        for (plan_seed, sched_seed) in [(0xC0FFEEu64, 7u64), (0xBEEF, 11), (42, 3)] {
            let plan = FaultPlan::from_seed(plan_seed);
            for cfg in
                [DetectorConfig::original(), DetectorConfig::hwlc(), DetectorConfig::hwlc_dr()]
            {
                let on = run_case_chaos_with(&built, cfg, plan, sched_seed, None, true);
                let off = run_case_chaos_with(&built, cfg, plan, sched_seed, None, false);
                assert_eq!(
                    on.fingerprint, off.fingerprint,
                    "plan {plan_seed:#x} sched {sched_seed}: {on:?} vs {off:?}"
                );
                assert_eq!(on.truncated, off.truncated);
                assert_eq!(on.locations, off.locations);
            }
        }
    }

    #[test]
    fn reduction_band_matches_paper() {
        // 65–81 % of warnings removed (paper §1). Check on one mid case.
        let tc = &testcases()[1]; // T2
        let built = tc.build();
        let row = Fig6Row {
            name: tc.name,
            original: run_case(&built, DetectorConfig::original()),
            hwlc: run_case(&built, DetectorConfig::hwlc()),
            hwlc_dr: run_case(&built, DetectorConfig::hwlc_dr()),
            paper: tc.paper_counts,
        };
        let red = row.fp_reduction();
        assert!(red > 0.6 && red < 0.85, "reduction {red}");
    }
}
