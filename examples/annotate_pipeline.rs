//! Fig 3/4: the transparent instrumentation pipeline. Mini-C++ source goes
//! through preprocess → parse → automatic delete-annotation → compile, and
//! the resulting "binary" runs on the VM under the race detector. A
//! third-party unit compiled *without* source instrumentation keeps its
//! destructor false positive; the instrumented build loses it.
//!
//! Run with: `cargo run --example annotate_pipeline`

use minicpp::pipeline::{run_pipeline, SourceFile};
use raceline::prelude::*;

/// The application: two workers share a session object under a lock; the
/// second one to finish deletes it (outside the lock — the destructor's
/// vptr writes are the compiler's, not the programmer's).
const APP: &str = "
class SipObject { int refs; virtual ~SipObject() {} };
class Session : SipObject { int dialogs; ~Session() {} };

mutex g_m;
int g_pending;

void use_session(Session* s) {
    lock(g_m);
    s->refresh();   // virtual call: dispatch reads the vptr
    s->dialogs = s->dialogs + 1;
    g_pending = g_pending - 1;
    int last = g_pending == 0;
    unlock(g_m);
    if (last == 1) {
        delete s;   // <- the site the annotation pass rewrites
    }
}

void worker(Session* s) {
    use_session(s);
}

void main() {
    g_pending = 2;
    Session* s = new Session;
    s->dialogs = 0;
    thread a = spawn worker(s);
    thread b = spawn worker(s);
    join(a);
    join(b);
}
";

fn run_detected(program: &Program, cfg: DetectorConfig) -> usize {
    let mut det = EraserDetector::new(cfg);
    let r = run_program(program, &mut det, &mut RoundRobin::new());
    assert!(r.termination.is_clean(), "{:?}", r.termination);
    for rep in det.sink.reports() {
        println!("{}", rep.render());
    }
    det.sink.race_location_count()
}

fn main() {
    // Build 1: instrumented (the paper's compiler-wrapper shell script).
    let instrumented = run_pipeline(&[SourceFile::new("session.cpp", APP)]).unwrap();
    println!("instrumented build: {} delete site(s) annotated", instrumented.deletes_annotated);
    println!("---- annotated source (stage 2 output, Fig 4 style) ----");
    for (name, src) in &instrumented.annotated_sources {
        println!("// {name}");
        println!("{src}");
    }

    // Build 2: plain (third-party source unavailable).
    let plain = run_pipeline(&[SourceFile::without_instrumentation("session.cpp", APP)]).unwrap();

    println!("==== plain build under HWLC+DR detector ====");
    let plain_warnings = run_detected(&plain.program, DetectorConfig::hwlc_dr());
    println!("warning locations: {plain_warnings}\n");

    println!("==== instrumented build under HWLC+DR detector ====");
    let inst_warnings = run_detected(&instrumented.program, DetectorConfig::hwlc_dr());
    println!("warning locations: {inst_warnings}\n");

    assert!(plain_warnings > 0, "unannotated destructor writes warn");
    assert_eq!(inst_warnings, 0, "annotation removes the destructor FP");
    println!(
        "summary: {} -> {} warnings after automatic annotation",
        plain_warnings, inst_warnings
    );
}
