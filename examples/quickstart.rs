//! Quickstart: build a small multi-threaded guest program, run it under
//! the three detector configurations of the paper (Original, HWLC,
//! HWLC+DR), and print the warnings.
//!
//! Run with: `cargo run --example quickstart`

use raceline::prelude::*;

/// A guest program with one real race (an unlocked counter) and one
/// properly locked counter.
fn build_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let racy = pb.global("g_racy_counter", 8);
    let safe = pb.global("g_safe_counter", 8);
    let mutex_cell = pb.global("g_mutex", 8);

    let loc = pb.loc("quickstart.cpp", 10, "worker");
    let mut w = ProcBuilder::new(0);
    w.at(loc);
    let m = w.load_new(mutex_cell, 8);
    w.begin_repeat(5u64);
    // Locked update: fine.
    w.lock(m);
    let v = w.load_new(safe, 8);
    w.store(safe, Expr::Reg(v).add(1u64.into()), 8);
    w.unlock(m);
    // Unlocked update: a data race.
    let u = w.load_new(racy, 8);
    w.store(racy, Expr::Reg(u).add(1u64.into()), 8);
    w.end_repeat();
    let worker = pb.add_proc("worker", w);

    let mloc = pb.loc("quickstart.cpp", 30, "main");
    let mut main = ProcBuilder::new(0);
    main.at(mloc);
    let m = main.new_mutex();
    main.store(mutex_cell, m, 8);
    let h1 = main.spawn(worker, vec![]);
    let h2 = main.spawn(worker, vec![]);
    main.join(h1);
    main.join(h2);
    let main_id = pb.add_proc("main", main);
    pb.set_entry(main_id);
    pb.finish()
}

fn main() {
    let program = build_program();

    for (name, cfg) in [
        ("Original", DetectorConfig::original()),
        ("HWLC", DetectorConfig::hwlc()),
        ("HWLC+DR", DetectorConfig::hwlc_dr()),
    ] {
        let mut detector = EraserDetector::new(cfg);
        let result = run_program(&program, &mut detector, &mut RoundRobin::new());
        println!("=== configuration: {name} ===");
        println!(
            "run: {:?}, {} events, {} threads",
            result.termination, result.stats.events, result.stats.threads_created
        );
        println!("distinct warning locations: {}", detector.sink.location_count());
        for report in detector.sink.reports() {
            println!("{}", report.render());
        }
    }

    // The same program under ten random schedules: the unlocked counter is
    // always caught (it empties the lockset in every interleaving).
    let mut found = 0;
    for seed in 0..10 {
        let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
        run_program(&program, &mut det, &mut SeededRandom::new(seed));
        if det.sink.race_location_count() > 0 {
            found += 1;
        }
    }
    println!("race found in {found}/10 random schedules");
}
