//! Fig 10 vs Fig 11: ownership hand-off. The same message-processing body
//! runs (a) thread-per-request — the thread-segment refinement sees the
//! create/join hand-off and stays silent — and (b) through a thread pool,
//! where the hand-off happens via a queue the lockset algorithm cannot
//! see, producing a false positive. The §5 "higher-level synchronisation"
//! extension (hybrid detection with queue happens-before edges, E12)
//! removes it again.
//!
//! Run with: `cargo run --example threadpool_handoff`

use raceline::prelude::*;
use sipsim::proxy::{build_proxy, Dispatch, ProxyConfig, SiteLabel};

fn proxy(dispatch: Dispatch) -> ProxyConfig {
    ProxyConfig {
        bus_sites: 2,
        dtor_sites: 3,
        real_sites: 3,
        touches_per_site: 2,
        sites_per_handler: 4,
        dispatch,
        annotate_deletes: true,
    }
}

fn main() {
    let tpr = build_proxy(&proxy(Dispatch::ThreadPerRequest));
    let pool = build_proxy(&proxy(Dispatch::ThreadPool { workers: 3 }));

    println!("== Eraser (HWLC+DR) on thread-per-request (Fig 10) ==");
    let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
    run_program(&tpr.program, &mut det, &mut RoundRobin::new());
    let tpr_handoff = det
        .sink
        .reports()
        .iter()
        .filter(|r| tpr.sites.classify(&r.file, r.line) == Some(SiteLabel::HandoffFp))
        .count();
    println!("warning locations: {} (hand-off FPs: {tpr_handoff})", det.sink.race_location_count());
    assert_eq!(tpr_handoff, 0, "create/join hand-off is understood");

    println!("\n== Eraser (HWLC+DR) on thread pool (Fig 11) ==");
    let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
    run_program(&pool.program, &mut det, &mut RoundRobin::new());
    let pool_handoff: Vec<_> = det
        .sink
        .reports()
        .iter()
        .filter(|r| pool.sites.classify(&r.file, r.line) == Some(SiteLabel::HandoffFp))
        .collect();
    println!(
        "warning locations: {} (hand-off FPs: {})",
        det.sink.race_location_count(),
        pool_handoff.len()
    );
    for r in &pool_handoff {
        println!("{}", r.render());
    }
    assert!(!pool_handoff.is_empty(), "queue hand-off is invisible to the lockset algorithm");

    println!("== Hybrid detector with queue happens-before (§5 extension, E12) ==");
    let mut det = HybridDetector::new(DetectorConfig::hybrid_queue_hb());
    run_program(&pool.program, &mut det, &mut RoundRobin::new());
    let qhb_handoff = det
        .sink
        .reports()
        .iter()
        .filter(|r| pool.sites.classify(&r.file, r.line) == Some(SiteLabel::HandoffFp))
        .count();
    println!("warning locations: {} (hand-off FPs: {qhb_handoff})", det.sink.race_location_count());
    assert_eq!(qhb_handoff, 0, "queue put/get edges order the hand-off");
    println!("\nsummary: TPR clean, pool adds a hand-off FP, queue-aware hybrid removes it");
}
