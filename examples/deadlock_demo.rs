//! Deadlock detection (§2.1, §3.3): the lock-order graph predicts an AB-BA
//! inversion even on a run that happens to finish, and the VM itself
//! reports the wait-for cycle when the dining philosophers actually stall.
//!
//! Run with: `cargo run --example deadlock_demo`

use raceline::prelude::*;

/// worker(first, second): lock both in the given order.
fn ab_ba_program(serialized: bool) -> Program {
    let mut pb = ProgramBuilder::new();
    let ma = pb.global("g_mutex_a", 8);
    let mb = pb.global("g_mutex_b", 8);
    let loc = pb.loc("transfer.cpp", 12, "transfer");
    let mut w = ProcBuilder::new(2);
    w.at(loc);
    let f = w.load_new(Expr::Reg(w.param(0)), 8);
    w.lock(f);
    w.yield_();
    let s = w.load_new(Expr::Reg(w.param(1)), 8);
    w.lock(s);
    w.unlock(s);
    w.unlock(f);
    let worker = pb.add_proc("transfer", w);

    let mloc = pb.loc("transfer.cpp", 30, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let a = m.new_mutex();
    let b = m.new_mutex();
    m.store(ma, a, 8);
    m.store(mb, b, 8);
    if serialized {
        // Sequential execution: never actually deadlocks, but the order
        // inversion is still there for the lock-order graph to find.
        let h1 = m.spawn(worker, vec![Expr::Global(ma), Expr::Global(mb)]);
        m.join(h1);
        let h2 = m.spawn(worker, vec![Expr::Global(mb), Expr::Global(ma)]);
        m.join(h2);
    } else {
        let h1 = m.spawn(worker, vec![Expr::Global(ma), Expr::Global(mb)]);
        let h2 = m.spawn(worker, vec![Expr::Global(mb), Expr::Global(ma)]);
        m.join(h1);
        m.join(h2);
    }
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

/// Dining philosophers, all grabbing left then right.
fn philosophers(n: u64) -> Program {
    let mut pb = ProgramBuilder::new();
    let forks = pb.global("g_forks", 8 * n);
    let loc = pb.loc("dining.cpp", 8, "philosopher");
    let mut w = ProcBuilder::new(2);
    w.at(loc);
    let left = w.load_new(Expr::Reg(w.param(0)), 8);
    let right = w.load_new(Expr::Reg(w.param(1)), 8);
    w.lock(left);
    w.yield_(); // think with one fork in hand
    w.lock(right);
    w.unlock(right);
    w.unlock(left);
    let phil = pb.add_proc("philosopher", w);

    let mloc = pb.loc("dining.cpp", 25, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    for i in 0..n {
        let f = m.new_mutex();
        m.store(Expr::Global(forks).add(Expr::Const(8 * i)), f, 8);
    }
    let mut joins = Vec::new();
    for i in 0..n {
        let l = Expr::Global(forks).add(Expr::Const(8 * i));
        let r = Expr::Global(forks).add(Expr::Const(8 * ((i + 1) % n)));
        joins.push(m.spawn(phil, vec![l, r]));
    }
    for h in joins {
        m.join(h);
    }
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

fn main() {
    // 1. Prediction: the serialized AB-BA run finishes cleanly, yet the
    //    lock-order graph reports the inversion.
    let program = ab_ba_program(true);
    let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
    let r = run_program(&program, &mut det, &mut RoundRobin::new());
    println!("serialized AB-BA run: {:?}", r.termination);
    for rep in det.sink.reports() {
        println!("{}", rep.render());
    }
    assert!(r.termination.is_clean());
    assert_eq!(det.sink.count_kind(ReportKind::LockOrderCycle), 1);

    // 2. Actual deadlock: fine-grained interleaving stalls both workers;
    //    the VM reports who waits for whom.
    let program = ab_ba_program(false);
    let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
    let r = run_program(&program, &mut det, &mut RoundRobin::new());
    match &r.termination {
        Termination::Deadlock(waits) => {
            println!("\nconcurrent AB-BA run deadlocked; wait-for graph:");
            for w in waits {
                println!(
                    "  thread {} blocked on {:?}, held by {:?}",
                    w.tid.0,
                    w.on,
                    w.holders.iter().map(|t| t.0).collect::<Vec<_>>()
                );
            }
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }

    // 3. Dining philosophers: classic circular wait.
    let program = philosophers(5);
    let mut tool = NullTool;
    let r = run_program(&program, &mut tool, &mut RoundRobin::new());
    match &r.termination {
        Termination::Deadlock(waits) => {
            println!(
                "\n5 dining philosophers deadlocked: {} threads in the cycle",
                waits.len() - 1
            );
        }
        other => println!("\nphilosophers finished without deadlock: {other:?}"),
    }
}
