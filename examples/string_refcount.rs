//! Fig 8/9: the libstdc++ copy-on-write `std::string` reference-count
//! false positive. A string constructed by `main` is copied concurrently
//! by a worker and by `main` itself; under the original bus-lock model the
//! `_M_grab` increment is reported, under HWLC it is not — while a truly
//! broken variant (a plain, unprefixed store to the refcount) is reported
//! under both.
//!
//! Run with: `cargo run --example string_refcount`

use cxxmodel::string::{emit_copy, emit_create, emit_drop, StringSite};
use raceline::prelude::*;

fn build(broken_plain_write: bool) -> Program {
    let mut pb = ProgramBuilder::new();
    let cell = pb.global("g_text", 8);
    let site = StringSite::new(&mut pb, "stringtest.cpp", 21);

    // A hypothetical pre-atomic string implementation: the refcount
    // update is a plain read-modify-write, racy in any interleaving.
    let broken_copy = |w: &mut ProcBuilder, rep: vexec::ir::RegId, loc: vexec::SrcLoc| {
        w.at(loc);
        let rc = w.load_new(Expr::Reg(rep), 8);
        w.store(Expr::Reg(rep), Expr::Reg(rc).add(1u64.into()), 8);
    };
    let broken_loc = pb.loc("stringtest.cpp", 22, "broken_string::copy");

    // void* workerThread(void* arguments) { std::string text = *arg; }
    let wloc = pb.loc("stringtest.cpp", 10, "workerThread");
    let mut w = ProcBuilder::new(0);
    w.at(wloc);
    let rep = w.load_new(cell, 8);
    if broken_plain_write {
        broken_copy(&mut w, rep, broken_loc);
    } else {
        let copy = emit_copy(&mut w, rep, site);
        emit_drop(&mut w, copy, site, 40, None);
    }
    let worker = pb.add_proc("workerThread", w);

    // int main() { std::string text("contents"); spawn; copy; join; }
    let mloc = pb.loc("stringtest.cpp", 16, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let rep = emit_create(&mut m, 16);
    m.store(cell, Expr::Reg(rep), 8);
    let h = m.spawn(worker, vec![]);
    m.yield_(); // sleep(1)
    let l22 = pb.loc("stringtest.cpp", 22, "main");
    m.at(l22);
    if broken_plain_write {
        broken_copy(&mut m, rep, broken_loc);
    } else {
        let copy = emit_copy(&mut m, rep, site); // <- reported conflict
        emit_drop(&mut m, copy, site, 40, None);
    }
    m.join(h);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

fn run(name: &str, program: &Program, cfg: DetectorConfig) -> usize {
    let mut det = EraserDetector::new(cfg);
    run_program(program, &mut det, &mut RoundRobin::new());
    println!("--- {name} ---");
    if det.sink.reports().is_empty() {
        println!("(no warnings)\n");
    }
    for r in det.sink.reports() {
        println!("{}", r.render());
    }
    det.sink.race_location_count()
}

fn main() {
    let correct = build(false);
    println!("### correct COW string (LOCK-prefixed refcount) ###\n");
    let orig = run("Original bus-lock model (plain mutex)", &correct, DetectorConfig::original());
    let hwlc = run("HWLC (bus lock as read-write lock)", &correct, DetectorConfig::hwlc());
    assert_eq!(orig, 1, "original Helgrind flags _M_grab (Fig 9)");
    assert_eq!(hwlc, 0, "HWLC removes the false positive");

    let broken = build(true);
    println!("### broken string (plain refcount store) ###\n");
    let orig = run("Original", &broken, DetectorConfig::original());
    let hwlc = run("HWLC", &broken, DetectorConfig::hwlc());
    assert!(orig >= 1 && hwlc >= 1, "the real race survives the correction");
    println!("summary: FP removed by HWLC, real race kept under both models");
}
