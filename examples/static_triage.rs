//! Static/dynamic cross-check triage: the same program analysed both ways.
//!
//! A dynamic detector only reports what the schedule executes — the
//! paper's Fig 7 bug survived production testing precisely because no run
//! took the buggy path. Here a lock-order inversion hides behind a flag
//! that is never set at runtime: the dynamic detector confirms the real
//! data race (confirmed-both) but is blind to the inversion; the static
//! lock-order graph walks both branches and predicts it (static-only).
//!
//! Run with: `cargo run --example static_triage`

use helgrind_core::{DetectorConfig, EraserDetector, Report};
use minicpp::pipeline::{run_pipeline, SourceFile};
use std::collections::BTreeSet;
use vexec::sched::RoundRobin;
use vexec::vm::run_program;

const APP: &str = "
mutex g_a;
mutex g_b;
int g_flag;
int g_counter;
int g_racy;

void worker(int n) {
    g_racy = g_racy + n;
    lock(g_a);
    lock(g_b);
    g_counter = g_counter + 1;
    unlock(g_b);
    unlock(g_a);
}

void cleanup() {
    if (g_flag == 1) {
        lock(g_b);
        lock(g_a);
        g_counter = g_counter + 1;
        unlock(g_a);
        unlock(g_b);
    }
}

void main() {
    g_flag = 0;
    thread a = spawn worker(1);
    thread b = spawn worker(2);
    join(a);
    join(b);
    cleanup();
}
";

fn key(r: &Report) -> (String, String, u32) {
    (r.kind.name().to_string(), r.file.clone(), r.line)
}

fn main() {
    let out = run_pipeline(&[SourceFile::new("triage.cpp", APP)]).expect("compiles");

    // Dynamic side: one concrete schedule under HWLC+DR.
    let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
    let result = run_program(&out.program, &mut det, &mut RoundRobin::new());
    let dynamic = det.sink.take_reports();
    println!("dynamic run: {:?}, {} report(s)", result.termination, dynamic.len());

    // Static side: every path, no schedule.
    let stat = minicpp::analysis::analyze(&out.units);
    println!("static analysis: {} report(s)\n", stat.reports.len());

    let dyn_keys: BTreeSet<_> = dynamic.iter().map(key).collect();
    let stat_keys: BTreeSet<_> = stat.reports.iter().map(key).collect();

    for r in stat.reports.iter().filter(|r| dyn_keys.contains(&key(r))) {
        println!("[confirmed-both] {} at {}:{}", r.kind.name(), r.file, r.line);
        println!("    {}", r.details);
    }
    for r in stat.reports.iter().filter(|r| !dyn_keys.contains(&key(r))) {
        println!("[static-only]    {} at {}:{}", r.kind.name(), r.file, r.line);
        println!("    {}", r.details);
    }
    for r in dynamic.iter().filter(|r| !stat_keys.contains(&key(r))) {
        println!("[dynamic-only]   {} at {}:{}", r.kind.name(), r.file, r.line);
    }

    // The schedule never took the g_flag branch, so the inversion is
    // invisible dynamically — exactly the §2.3.2 coverage gap static
    // analysis closes.
    let confirmed = stat.reports.iter().filter(|r| dyn_keys.contains(&key(r))).count();
    let static_only = stat.reports.len() - confirmed;
    println!("\n{confirmed} confirmed-both, {static_only} static-only");
    assert!(confirmed >= 1, "the real race is seen by both sides");
    assert!(static_only >= 1, "the gated AB-BA is predicted only statically");
}
