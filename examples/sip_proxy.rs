//! The headline experiment: run the eight SIP-proxy test cases (T1–T8)
//! under the three detector configurations and print the reproduced Fig 6
//! table next to the paper's numbers, plus the Fig 5 category breakdown.
//!
//! Run with: `cargo run --release --example sip_proxy`

use sipsim::testcases::reproduce_fig6;
use sipsim::testcases::testcases;
use sipsim::workload::generate;

fn main() {
    // Show the SIPp-style traffic behind one case, for flavour.
    let t1 = &testcases()[0];
    let requests = generate(&t1.scenario);
    println!(
        "{}: scenario generates {} SIP requests (first: {})",
        t1.name,
        requests.len(),
        requests[0].render().lines().next().unwrap_or("")
    );
    println!();

    println!("Fig 6 — reported possible-data-race locations per configuration");
    println!("(paper values in parentheses)\n");
    println!("{:<5} {:>16} {:>16} {:>16}  {:>9}", "Case", "Original", "HWLC", "HWLC+DR", "FP cut");
    for row in reproduce_fig6() {
        let (po, ph, pd) = row.paper;
        println!(
            "{:<5} {:>10} ({:>4}) {:>10} ({:>4}) {:>10} ({:>4})  {:>8.1}%",
            row.name,
            row.original.locations,
            po,
            row.hwlc.locations,
            ph,
            row.hwlc_dr.locations,
            pd,
            row.fp_reduction() * 100.0
        );
        assert_eq!(row.original.unexpected, 0);
        assert_eq!(row.hwlc.unexpected, 0);
        assert_eq!(row.hwlc_dr.unexpected, 0);
    }

    println!("\nFig 5 — warning breakdown by ground truth (Original config):");
    println!("{:<5} {:>14} {:>16} {:>10}", "Case", "bus-lock FP", "destructor FP", "real races");
    for row in reproduce_fig6() {
        println!(
            "{:<5} {:>14} {:>16} {:>10}",
            row.name, row.original.bus_fp, row.original.dtor_fp, row.original.real
        );
    }
}
