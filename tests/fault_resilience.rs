//! Property-based chaos tests: for *arbitrary* seeded fault plans — not
//! just the bounded ones `FaultPlan::from_seed` derives — the VM and every
//! detector must (a) never panic on the host, whatever the injected faults
//! do to the guest, and (b) stay bit-for-bit deterministic: the same
//! (plan, schedule seed) reproduces the same termination, the same reports
//! and the same fault counts.
//!
//! This is the paper's §3.3 testing argument turned on the tool itself:
//! the SIP proxy was chaos-tested with SIPp load; here the *tracer* is
//! chaos-tested with deterministic fault injection.

use helgrind_core::{DetectorConfig, DjitDetector, EraserDetector, HybridDetector};
use proptest::prelude::*;
use vexec::faults::FaultPlan;
use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::{Cond, Expr, Program, SyncKind, SyncOp};
use vexec::sched::SeededRandom;
use vexec::tool::Tool;
use vexec::vm::{run_flat, VmOptions};

/// Producer/consumer over a condvar plus an unlocked counter: exercises
/// every fault channel — condvar waits (spurious wakeups), mutex locks
/// (lock failure + kill-in-critical-section), worker allocation (alloc
/// failure) and a genuine data race the detector should still see.
fn condvar_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let flag = pb.global("g_flag", 8);
    let data = pb.global("g_data", 8);
    let stat = pb.global("g_stat", 8);
    let m_cell = pb.global("g_mutex", 8);
    let cv_cell = pb.global("g_cond", 8);

    let ploc = pb.loc("chaos.cpp", 10, "producer");
    let mut p = ProcBuilder::new(0);
    p.at(ploc);
    let buf = p.alloc(16u64);
    p.store(Expr::Reg(buf), 7u64, 8);
    let m = p.load_new(m_cell, 8);
    let cv = p.load_new(cv_cell, 8);
    p.lock(m);
    p.store(data, Expr::Reg(buf), 8);
    p.store(flag, 1u64, 8);
    p.sync(SyncOp::CondSignal(Expr::Reg(cv)));
    p.unlock(m);
    p.store(stat, 1u64, 8); // unlocked: races with the consumer's bump
    p.free(Expr::Reg(buf));
    let producer = pb.add_proc("producer", p);

    let cloc = pb.loc("chaos.cpp", 30, "consumer");
    let mut c = ProcBuilder::new(0);
    c.at(cloc);
    let m = c.load_new(m_cell, 8);
    let cv = c.load_new(cv_cell, 8);
    c.lock(m);
    let f = c.reg();
    c.load(f, flag, 8);
    c.begin_while(Cond::Eq(Expr::Reg(f), Expr::Const(0)));
    c.sync(SyncOp::CondWait { cond: Expr::Reg(cv), mutex: Expr::Reg(m) });
    c.load(f, flag, 8);
    c.end_while();
    c.unlock(m);
    c.store(stat, 2u64, 8); // second unlocked writer
    let consumer = pb.add_proc("consumer", c);

    let mloc = pb.loc("chaos.cpp", 50, "main");
    let mut mn = ProcBuilder::new(0);
    mn.at(mloc);
    let mx = mn.new_mutex();
    mn.store(m_cell, mx, 8);
    let cv = mn.new_sync(SyncKind::CondVar, 0u64);
    mn.store(cv_cell, cv, 8);
    let h1 = mn.spawn(consumer, vec![]);
    let h2 = mn.spawn(consumer, vec![]);
    let h3 = mn.spawn(producer, vec![]);
    mn.join(h1);
    mn.join(h2);
    mn.join(h3);
    let main_id = pb.add_proc("main", mn);
    pb.set_entry(main_id);
    pb.finish()
}

/// Arbitrary plans, deliberately wider than `FaultPlan::from_seed`'s
/// bounds (e.g. 20% lock-failure rate) — the VM must cope with plans a
/// hostile caller could construct, not just the sweep's own.
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), 0u32..=200, 0u32..=200, 0u32..=100, 0u32..=50, 0u32..=3).prop_map(
        |(seed, wakeup, lockfail, allocfail, kill, max_kills)| FaultPlan {
            seed,
            wakeup_permille: wakeup,
            lockfail_permille: lockfail,
            allocfail_permille: allocfail,
            kill_permille: kill,
            max_kills,
        },
    )
}

/// Everything that must reproduce exactly.
#[derive(Debug, PartialEq, Eq)]
struct RunProbe {
    termination: String,
    reports: Vec<(String, String, u32, String, String)>,
    faults: String,
}

fn probe<T: Tool>(
    program: &Program,
    plan: FaultPlan,
    sched_seed: u64,
    mut det: T,
    reports_of: impl Fn(&mut T) -> Vec<(String, String, u32, String, String)>,
) -> RunProbe {
    let flat = program.lower();
    let mut sched = SeededRandom::new(sched_seed);
    // A small fuel budget keeps pathological plans (high lock-failure
    // livelock) bounded; FuelExhausted is a legal, structured outcome.
    let opts = VmOptions { faults: Some(plan), max_slots: 200_000, ..Default::default() };
    let r = run_flat(&flat, &mut det, &mut sched, opts);
    RunProbe {
        termination: format!("{:?}", r.termination),
        reports: reports_of(&mut det),
        faults: format!("{:?}", r.faults),
    }
}

fn eraser_reports(det: &mut EraserDetector) -> Vec<(String, String, u32, String, String)> {
    det.sink
        .reports()
        .iter()
        .map(|r| {
            (r.kind.name().to_string(), r.file.clone(), r.line, r.func.clone(), r.details.clone())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No plan panics the VM or the Eraser detector, and every run is
    /// bit-identical when repeated with the same (plan, schedule seed).
    #[test]
    fn arbitrary_plans_never_panic_and_reproduce(
        plan in plan_strategy(),
        sched_seed in any::<u64>(),
    ) {
        let program = condvar_program();
        let a = probe(&program, plan, sched_seed,
            EraserDetector::new(DetectorConfig::hwlc_dr()), eraser_reports);
        let b = probe(&program, plan, sched_seed,
            EraserDetector::new(DetectorConfig::hwlc_dr()), eraser_reports);
        prop_assert_eq!(a, b);
    }

    /// Same property for the happens-before and hybrid detectors: the
    /// resilience contract is detector-independent.
    #[test]
    fn all_detectors_survive_arbitrary_plans(
        plan in plan_strategy(),
        sched_seed in any::<u64>(),
    ) {
        let program = condvar_program();
        let djit = |det: &mut DjitDetector| {
            det.sink.reports().iter()
                .map(|r| (r.kind.name().to_string(), r.file.clone(), r.line,
                          r.func.clone(), r.details.clone()))
                .collect::<Vec<_>>()
        };
        let hybrid = |det: &mut HybridDetector| {
            det.sink.reports().iter()
                .map(|r| (r.kind.name().to_string(), r.file.clone(), r.line,
                          r.func.clone(), r.details.clone()))
                .collect::<Vec<_>>()
        };
        let d1 = probe(&program, plan, sched_seed, DjitDetector::new(DetectorConfig::djit()), djit);
        let d2 = probe(&program, plan, sched_seed, DjitDetector::new(DetectorConfig::djit()), djit);
        prop_assert_eq!(d1, d2);
        let h1 = probe(&program, plan, sched_seed,
            HybridDetector::new(DetectorConfig::hybrid_queue_hb()), hybrid);
        let h2 = probe(&program, plan, sched_seed,
            HybridDetector::new(DetectorConfig::hybrid_queue_hb()), hybrid);
        prop_assert_eq!(h1, h2);
    }

    /// A disabled plan must not change behaviour at all: faults=None and
    /// faults=Some(disabled) give identical reports and termination.
    #[test]
    fn disabled_plan_is_transparent(sched_seed in any::<u64>()) {
        let program = condvar_program();
        let flat = program.lower();
        let run = |faults: Option<FaultPlan>| {
            let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
            let mut sched = SeededRandom::new(sched_seed);
            let opts = VmOptions { faults, max_slots: 200_000, ..Default::default() };
            let r = run_flat(&flat, &mut det, &mut sched, opts);
            (format!("{:?}", r.termination), eraser_reports(&mut det))
        };
        let off = run(None);
        let noop = run(Some(FaultPlan::disabled()));
        prop_assert_eq!(off, noop);
    }
}
