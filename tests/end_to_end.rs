//! Workspace integration tests: the full stack from mini-C++ source (or
//! the SIP proxy model) through the VM to detector reports, exercised via
//! the `raceline` facade exactly as a downstream user would.

use raceline::prelude::*;
use raceline::{minicpp, sipsim};

/// Source-to-warning: compile mini-C++ with and without instrumentation,
/// run under all three configurations, check the full warning matrix.
#[test]
fn minicpp_source_to_warning_matrix() {
    const SRC: &str = "
class Connection { int fd; virtual ~Connection() {} };
mutex g_m;
int g_refs;
int g_racy_stat;

void handle(Connection* c) {
    lock(g_m);
    c->keepalive();
    c->fd = c->fd + 1;
    g_refs = g_refs - 1;
    int last = g_refs == 0;
    unlock(g_m);
    g_racy_stat = g_racy_stat + 1;
    if (last == 1) {
        delete c;
    }
}

void main() {
    g_refs = 2;
    Connection* c = new Connection;
    thread a = spawn handle(c);
    thread b = spawn handle(c);
    join(a);
    join(b);
}
";
    let instrumented = minicpp::run_pipeline(&[minicpp::SourceFile::new("conn.cpp", SRC)]).unwrap();
    let plain =
        minicpp::run_pipeline(&[minicpp::SourceFile::without_instrumentation("conn.cpp", SRC)])
            .unwrap();

    let run = |prog: &Program, cfg: DetectorConfig| {
        let mut det = EraserDetector::new(cfg);
        let r = run_program(prog, &mut det, &mut RoundRobin::new());
        assert!(r.termination.is_clean(), "{:?}", r.termination);
        det
    };

    // The racy statistics counter is found in every configuration.
    for cfg in [DetectorConfig::original(), DetectorConfig::hwlc(), DetectorConfig::hwlc_dr()] {
        let det = run(&instrumented.program, cfg);
        assert!(
            det.sink.reports().iter().any(|r| r.line == 14),
            "racy g_racy_stat (line 14) must warn under {cfg:?}: {:#?}",
            det.sink.reports()
        );
    }

    // The destructor FP appears without DR (even when annotations are in
    // the binary) and with DR when the source was not instrumented.
    let dtor_line_hits = |det: &EraserDetector| {
        det.sink.reports().iter().filter(|r| r.func.contains("~Connection")).count()
    };
    assert_eq!(dtor_line_hits(&run(&instrumented.program, DetectorConfig::hwlc())), 1);
    assert_eq!(dtor_line_hits(&run(&instrumented.program, DetectorConfig::hwlc_dr())), 0);
    assert_eq!(dtor_line_hits(&run(&plain.program, DetectorConfig::hwlc_dr())), 1);
}

/// The full Fig 6 table matches the paper exactly, and every warning is
/// attributed to a known site (no unexpected locations anywhere).
#[test]
fn fig6_full_table_matches_paper() {
    for row in sipsim::reproduce_fig6() {
        let (po, ph, pd) = row.paper;
        assert_eq!(row.original.locations, po, "{} Original", row.name);
        assert_eq!(row.hwlc.locations, ph, "{} HWLC", row.name);
        assert_eq!(row.hwlc_dr.locations, pd, "{} HWLC+DR", row.name);
        assert_eq!(
            row.original.unexpected + row.hwlc.unexpected + row.hwlc_dr.unexpected,
            0,
            "{}: unexpected warning locations",
            row.name
        );
        // Category accounting is exact under Original.
        assert_eq!(row.original.bus_fp + row.original.dtor_fp + row.original.real, po);
        // HWLC removes exactly the bus-lock FPs; DR exactly the dtor FPs.
        assert_eq!(row.hwlc.bus_fp, 0, "{}", row.name);
        assert_eq!(row.hwlc_dr.dtor_fp, 0, "{}", row.name);
        assert_eq!(row.hwlc_dr.real, pd, "{}", row.name);
        // The paper's headline band: 65–81 % of warnings removed
        // (T7 is 64.8 % — the paper rounds to 65 %).
        let red = row.fp_reduction();
        assert!((0.64..=0.82).contains(&red), "{}: reduction {red}", row.name);
    }
}

/// Suppression files silence whole categories by pattern, like shipping a
/// suppressions file for libstdc++ internals.
#[test]
fn suppressions_silence_string_and_dtor_categories() {
    let tc = &sipsim::testcases()[2]; // T3
    let built = tc.build();
    let supp = SuppressionSet::parse(
        "{
   libstdcxx-cow-string
   Helgrind:Race
   fun:std::string::_Rep::_M_grab
   ...
}",
    )
    .unwrap();
    let mut det =
        helgrind_core::EraserDetector::with_suppressions(DetectorConfig::original(), supp);
    let r = run_program(&built.program, &mut det, &mut RoundRobin::new());
    assert!(r.termination.is_clean());
    // All 58 bus-lock FPs of T3 suppressed; destructor FPs + real remain.
    assert_eq!(det.sink.suppressed, 58);
    let races = det.sink.reports().iter().filter(|r| r.kind != ReportKind::LockOrderCycle).count();
    assert_eq!(races, 252 - 58);
}

/// Detector families ranked on the same racy program: the lockset
/// algorithm reports independent of schedule, DJIT only when the schedule
/// exposes the conflict.
#[test]
fn lockset_vs_djit_schedule_sensitivity() {
    // One unlocked writer + one locked writer (§4.3's shape): run under
    // many random schedules; Eraser's verdict flips with the observed
    // order, DJIT agrees with Eraser whenever the accesses are truly
    // unordered.
    let mut pb = ProgramBuilder::new();
    let data = pb.global("g", 8);
    let m_cell = pb.global("m", 8);
    let mut a = ProcBuilder::new(0);
    a.at(pb.loc("p.cpp", 1, "unlocked"));
    a.yield_();
    a.store(data, 1u64, 8);
    let wa = pb.add_proc("unlocked", a);
    let mut b = ProcBuilder::new(0);
    b.at(pb.loc("p.cpp", 10, "locked"));
    let mx = b.load_new(m_cell, 8);
    b.lock(mx);
    b.store(data, 2u64, 8);
    b.unlock(mx);
    let wb = pb.add_proc("locked", b);
    let mut m = ProcBuilder::new(0);
    m.at(pb.loc("p.cpp", 20, "main"));
    let mx = m.new_mutex();
    m.store(m_cell, mx, 8);
    let h1 = m.spawn(wa, vec![]);
    let h2 = m.spawn(wb, vec![]);
    m.join(h1);
    m.join(h2);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    let prog = pb.finish();

    let mut eraser_hits = 0;
    let mut djit_hits = 0;
    let n: u32 = 30;
    for seed in 0..n as u64 {
        let mut er = EraserDetector::new(DetectorConfig::hwlc_dr());
        run_program(&prog, &mut er, &mut SeededRandom::new(seed));
        eraser_hits += (er.sink.race_location_count() > 0) as u32;
        let mut dj = DjitDetector::new(DetectorConfig::hwlc_dr());
        run_program(&prog, &mut dj, &mut SeededRandom::new(seed));
        djit_hits += (dj.sink.race_location_count() > 0) as u32;
    }
    // Both detectors are schedule-dependent here; the experiment's point
    // is that neither catches it always, and both catch it sometimes.
    assert!(eraser_hits > 0 && eraser_hits < n, "eraser {eraser_hits}/{n}");
    assert!(djit_hits > 0, "djit {djit_hits}/{n}");
}

/// The prelude's advertised quickstart really works end to end.
#[test]
fn prelude_quickstart() {
    let mut pb = ProgramBuilder::new();
    let counter = pb.global("counter", 8);
    let loc = pb.loc("app.cpp", 7, "worker");
    let mut w = ProcBuilder::new(0);
    w.at(loc);
    let v = w.load_new(counter, 8);
    w.store(counter, Expr::Reg(v).add(1u64.into()), 8);
    let worker = pb.add_proc("worker", w);
    let mut main = ProcBuilder::new(0);
    main.at(pb.loc("app.cpp", 20, "main"));
    let h1 = main.spawn(worker, vec![]);
    let h2 = main.spawn(worker, vec![]);
    main.join(h1);
    main.join(h2);
    let main_id = pb.add_proc("main", main);
    pb.set_entry(main_id);
    let program = pb.finish();

    let mut detector = EraserDetector::new(DetectorConfig::hwlc_dr());
    let result = run_program(&program, &mut detector, &mut RoundRobin::new());
    assert!(result.termination.is_clean());
    assert_eq!(detector.sink.race_location_count(), 1);
    let report = &detector.sink.reports()[0];
    assert_eq!(report.file, "app.cpp");
    assert_eq!(report.line, 7);
}

/// The whole stack stays deterministic: two full T1 runs give identical
/// reports, byte for byte.
#[test]
fn full_pipeline_determinism() {
    let tc = &sipsim::testcases()[0];
    let run_once = || {
        let built = tc.build();
        let mut det = EraserDetector::new(DetectorConfig::original());
        run_program(&built.program, &mut det, &mut RoundRobin::new());
        det.sink
            .reports()
            .iter()
            .map(|r| format!("{}:{}:{}:{:?}", r.file, r.line, r.func, r.kind))
            .collect::<Vec<_>>()
    };
    assert_eq!(run_once(), run_once());
}
