//! Integration tests for the trace subcommands (`record`, `analyze`,
//! `trace-diff`) and the checkpoint torn-write repair, driven through the
//! real executable.

use std::path::PathBuf;
use std::process::Command;

fn raceline(args: &[&str]) -> (String, String, i32) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_raceline")).args(args).output().expect("run raceline");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

const SAMPLE: &str = "examples/programs/session.mcpp";
const RACY: &str = "examples/programs/racy_global.mcpp";
const CLEAN: &str = "examples/programs/clean_locked.mcpp";

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("raceline_trace_cli_{name}"))
}

fn record_sample(src: &str, name: &str, extra: &[&str]) -> PathBuf {
    let path = tmp(name);
    let p = path.to_str().unwrap().to_string();
    let mut args = vec!["record", src, "--out", &p];
    args.extend_from_slice(extra);
    let (_, stderr, code) = raceline(&args);
    assert_eq!(code, 0, "record must succeed\n{stderr}");
    assert!(stderr.contains("recorded "), "{stderr}");
    path
}

#[test]
fn analyze_output_is_byte_identical_to_check() {
    let trace = record_sample(SAMPLE, "golden.rltrace", &["--epoch-events", "8"]);
    for engine in ["original", "hwlc", "hwlc-dr", "djit", "hybrid", "hybrid-queue"] {
        let (check_out, _, check_code) = raceline(&["check", SAMPLE, "--detector", engine]);
        let (analyze_out, _, analyze_code) =
            raceline(&["analyze", trace.to_str().unwrap(), "--detector", engine]);
        assert_eq!(analyze_out, check_out, "stdout must match byte for byte [{engine}]");
        assert_eq!(analyze_code, check_code, "exit codes must match [{engine}]");
    }
}

#[test]
fn analyze_jobs_are_deterministic() {
    let trace = record_sample(SAMPLE, "jobs.rltrace", &["--epoch-events", "4"]);
    let p = trace.to_str().unwrap();
    let baseline = raceline(&["analyze", p, "--jobs", "1"]);
    for jobs in ["2", "8"] {
        assert_eq!(raceline(&["analyze", p, "--jobs", jobs]), baseline, "jobs {jobs}");
    }
}

#[test]
fn analyze_rejects_corruption_with_structured_errors() {
    let trace = record_sample(SAMPLE, "corrupt.rltrace", &[]);
    let bytes = std::fs::read(&trace).unwrap();

    // Truncated file.
    let torn = tmp("torn.rltrace");
    std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();
    let (_, stderr, code) = raceline(&["analyze", torn.to_str().unwrap()]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("truncated"), "{stderr}");

    // Flipped byte in the middle.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xFF;
    let flip = tmp("flip.rltrace");
    std::fs::write(&flip, &flipped).unwrap();
    let (_, stderr, code) = raceline(&["analyze", flip.to_str().unwrap()]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("checksum mismatch"), "{stderr}");

    // Version bump (with the checksum recomputed over it, so the version
    // check itself is what fires).
    let bad = tmp("version.rltrace");
    std::fs::write(&bad, b"RLTRACE1\xFF\x00\x00\x00rest").unwrap();
    let (_, stderr, code) = raceline(&["analyze", bad.to_str().unwrap()]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("version"), "{stderr}");

    // Not a trace at all.
    let junk = tmp("junk.rltrace");
    std::fs::write(&junk, b"hello world").unwrap();
    let (_, stderr, code) = raceline(&["analyze", junk.to_str().unwrap()]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("bad magic"), "{stderr}");
}

#[test]
fn trace_diff_reports_new_and_fixed_warnings() {
    let racy = record_sample(RACY, "diff_racy.rltrace", &[]);
    let clean = record_sample(CLEAN, "diff_clean.rltrace", &[]);
    let (racy_p, clean_p) = (racy.to_str().unwrap(), clean.to_str().unwrap());

    // Identical inputs: no differences, exit 0.
    let (stdout, _, code) = raceline(&["trace-diff", racy_p, racy_p]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("0 new, 0 fixed"), "{stdout}");

    // Racy → other program: the racy global's warning is fixed, exit 1.
    let (stdout, _, code) = raceline(&["trace-diff", racy_p, clean_p]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("1 fixed"), "{stdout}");
    assert!(
        stdout.contains("[fixed] Race (write) at examples/programs/racy_global.mcpp"),
        "{stdout}"
    );

    // Reversed direction: the same warning is new.
    let (stdout, _, code) = raceline(&["trace-diff", clean_p, racy_p]);
    assert_eq!(code, 1, "{stdout}");
    assert!(
        stdout.contains("[new] Race (write) at examples/programs/racy_global.mcpp"),
        "{stdout}"
    );

    // One trace, two detector configs: DR fixes the destructor FP.
    let sample = record_sample(SAMPLE, "diff_dr.rltrace", &[]);
    let sp = sample.to_str().unwrap();
    let (stdout, _, code) =
        raceline(&["trace-diff", sp, sp, "--detector-a", "original", "--detector-b", "hwlc-dr"]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("1 fixed"), "destructor FP disappears under DR\n{stdout}");
}

#[test]
fn analyze_from_epoch_primes_held_locks() {
    // A suffix analysis still runs end to end; with everything before the
    // last epoch skipped, the race body may or may not re-trigger, but the
    // command must succeed and stay deterministic.
    let trace = record_sample(SAMPLE, "suffix.rltrace", &["--epoch-events", "8"]);
    let p = trace.to_str().unwrap();
    let a = raceline(&["analyze", p, "--from-epoch", "3"]);
    let b = raceline(&["analyze", p, "--from-epoch", "3"]);
    assert_eq!(a, b);
    assert!(a.2 == 0 || a.2 == 1, "suffix analysis is clean or findings, not an error");
}

#[test]
fn record_passes_schedule_and_fault_options_through() {
    let trace = record_sample(
        RACY,
        "faults.rltrace",
        &["--schedule", "random:7", "--faults", "seed=7,wakeup=50"],
    );
    let (stdout, _, code) = raceline(&["analyze", trace.to_str().unwrap(), "--json"]);
    assert!(code == 0 || code == 1, "{stdout}");
    assert!(stdout.contains("\"injected_faults\""), "fault counters survive the footer\n{stdout}");
}

#[test]
fn checkpoint_survives_torn_final_line() {
    let ck = tmp("torn.checkpoint");
    let ck_p = ck.to_str().unwrap().to_string();
    let _ = std::fs::remove_file(&ck);
    let (_, stderr, _) = raceline(&["check", SAMPLE, "--explore", "6", "--checkpoint", &ck_p]);
    assert!(std::fs::metadata(&ck).is_ok(), "sweep must write a checkpoint\n{stderr}");

    // Tear the file the way an interrupted write would: cut mid-way into
    // the final record's structured fields (a cut inside the free-text
    // details field would still parse, and rightly needs no repair).
    let text = std::fs::read_to_string(&ck).unwrap();
    let last_start = text.trim_end().rfind('\n').expect("multi-line checkpoint") + 1;
    std::fs::write(&ck, &text[..last_start + 10]).unwrap();

    let (_, stderr, code) = raceline(&["check", SAMPLE, "--explore", "6", "--checkpoint", &ck_p]);
    assert_ne!(code, 2, "torn checkpoint must not abort the sweep\n{stderr}");
    assert!(stderr.contains("repaired truncated checkpoint"), "{stderr}");
    assert!(stderr.contains("resuming from"), "{stderr}");
}
