//! Golden epoch-equivalence gate: the adaptive FastTrack epoch lattice
//! must be invisible in every report a user can read.
//!
//! Each of the eight evaluation cases T1–T8 is run under all six detector
//! configurations, once with the adaptive epoch read state and once in
//! `hb_reference` mode (full vector clocks), and the complete observable
//! output — termination, the truncation flag, and the rendered report
//! text — must be byte-identical. A second sweep repeats the matrix under
//! an aggressive fault-injection plan and a seeded random scheduler, so
//! the equivalence is exercised off the happy path too (killed threads,
//! failed allocations, spurious wakeups).
//!
//! Only the stderr-side statistics (`--stats` epoch counters) may differ
//! between the two runs; nothing here looks at those.

use raceline::helgrind_core::ReportSink;
use raceline::prelude::*;
use raceline::sipsim;
use raceline::vexec::ir::lower::FlatProgram;
use raceline::vexec::vm::run_flat;
use raceline::vexec::FaultPlan;

/// Run one detector over `flat` through the production filtered path and
/// fold everything the user observes into a single string.
fn observe<T: Tool>(
    flat: &FlatProgram,
    det: T,
    sink_of: impl Fn(&T) -> &ReportSink,
    opts: &VmOptions,
    seed: Option<u64>,
) -> String {
    let mut sched: Box<dyn Scheduler> = match seed {
        Some(s) => Box::new(SeededRandom::new(s)),
        None => Box::new(RoundRobin::new()),
    };
    let mut tool = FilterTool::new(det);
    let r = run_flat(flat, &mut tool, sched.as_mut(), opts.clone());
    let det = tool.into_parts().0;
    let sink = sink_of(&det);
    let mut out = format!("termination: {:?}\ntruncated: {}\n", r.termination, sink.truncated());
    for rep in sink.reports() {
        out.push_str(&rep.render());
        out.push('\n');
    }
    out
}

/// All six engine configurations against one program; panics on the first
/// adaptive/reference divergence. The Eraser rows have no HB engine, but
/// running them pins that `hb_reference` is a no-op there.
fn assert_six_engines_equivalent(
    flat: &FlatProgram,
    opts: &VmOptions,
    seed: Option<u64>,
    label: &str,
) {
    let reference = |cfg: DetectorConfig| DetectorConfig { hb_reference: true, ..cfg };
    let eraser_cfgs =
        [DetectorConfig::original(), DetectorConfig::hwlc(), DetectorConfig::hwlc_dr()];
    for cfg in eraser_cfgs {
        let adaptive = observe(flat, EraserDetector::new(cfg), |d| &d.sink, opts, seed);
        let refr = observe(flat, EraserDetector::new(reference(cfg)), |d| &d.sink, opts, seed);
        assert_eq!(adaptive, refr, "{label}: eraser {cfg:?} diverged");
    }
    {
        let cfg = DetectorConfig::djit();
        let adaptive = observe(flat, DjitDetector::new(cfg), |d| &d.sink, opts, seed);
        let refr = observe(flat, DjitDetector::new(reference(cfg)), |d| &d.sink, opts, seed);
        assert_eq!(adaptive, refr, "{label}: djit diverged");
    }
    for cfg in [DetectorConfig::hybrid(), DetectorConfig::hybrid_queue_hb()] {
        let adaptive = observe(flat, HybridDetector::new(cfg), |d| &d.sink, opts, seed);
        let refr = observe(flat, HybridDetector::new(reference(cfg)), |d| &d.sink, opts, seed);
        assert_eq!(adaptive, refr, "{label}: hybrid {cfg:?} diverged");
    }
}

/// T1–T8 × 6 engines, clean deterministic schedule.
#[test]
fn t1_t8_adaptive_and_reference_are_byte_identical() {
    for case in sipsim::testcases() {
        let built = case.build();
        let flat = built.program.lower();
        assert_six_engines_equivalent(&flat, &VmOptions::default(), None, case.name);
    }
}

/// T1–T8 × 6 engines under fault injection and a randomized schedule:
/// the equivalence must survive killed threads, failed allocations and
/// spurious wakeups, where runs legitimately end in deadlocks or guest
/// errors.
#[test]
fn t1_t8_adaptive_and_reference_are_byte_identical_under_faults() {
    let opts = VmOptions {
        faults: Some(FaultPlan {
            seed: 11,
            wakeup_permille: 120,
            lockfail_permille: 60,
            allocfail_permille: 25,
            kill_permille: 8,
            max_kills: 2,
        }),
        ..VmOptions::default()
    };
    for (i, case) in sipsim::testcases().into_iter().enumerate() {
        let built = case.build();
        let flat = built.program.lower();
        assert_six_engines_equivalent(&flat, &opts, Some(0xC0FFEE + i as u64), case.name);
    }
}
