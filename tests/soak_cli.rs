//! Integration tests for `raceline soak` and the crash-recovery story,
//! driven through the real executable: the exit-code contract, `--jobs`
//! byte-identity, a harness crash injected *mid-checkpoint-write* (via the
//! `RACELINE_TEST_TORN_WRITE` hook) with byte-identical resume, and the
//! `analyze --repair` recovery of a crash-truncated trace.

use std::path::PathBuf;
use std::process::Command;

fn raceline(args: &[&str]) -> (String, String, i32) {
    raceline_env(args, &[])
}

/// Like [`raceline`] but with extra environment variables — the torn-write
/// crash hook is armed through the environment so the *child* tears, not
/// the test harness.
fn raceline_env(args: &[&str], envs: &[(&str, &str)]) -> (String, String, i32) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_raceline"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("run raceline");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("raceline_soak_cli_{name}"))
}

const SAMPLE: &str = "examples/programs/session.mcpp";

/// The standard small soak profile used across these tests: enough traffic
/// to hit every planted site, kills armed, a couple of seconds of work.
const SOAK: &[&str] =
    &["soak", "--dialogs", "2000", "--phases", "4", "--seed", "77", "--kill", "30", "--mem-report"];

#[test]
fn soak_finds_the_planted_races_and_exits_one() {
    let (stdout, stderr, code) = raceline(SOAK);
    assert_eq!(code, 1, "planted races => exit 1\n{stdout}{stderr}");
    // Every planted site and nothing else: the registrar expiry counter,
    // the two call statistics, and one forward counter per proxy hop.
    for site in [
        "registrar.cpp:55",
        "stats.cpp:20",
        "stats.cpp:25",
        "routing.cpp:115",
        "routing.cpp:125",
        "routing.cpp:135",
    ] {
        assert!(stdout.contains(site), "missing planted site {site}\n{stdout}");
    }
    assert!(stdout.contains("catalogue: 12 warning location(s)"), "{stdout}");
    assert!(stdout.contains("mem-verdict: flat"), "reclamation keeps granules flat\n{stdout}");
    assert!(stderr.contains("soak: phase 4/4:"), "per-phase progress on stderr\n{stderr}");
}

#[test]
fn soak_single_thread_profile_is_clean_and_exits_zero() {
    let (stdout, stderr, code) = raceline(&[
        "soak",
        "--dialogs",
        "600",
        "--phases",
        "2",
        "--workers",
        "1",
        "--resize",
        "0",
        "--kill",
        "0",
        "--seed",
        "9",
    ]);
    assert_eq!(code, 0, "one worker, no kills => no races => exit 0\n{stdout}{stderr}");
    assert!(stdout.contains("catalogue: 0 warning location(s)"), "{stdout}");
}

#[test]
fn soak_rejects_bad_usage_with_exit_two() {
    let (_, _, code) = raceline(&["soak", "--dialogs"]);
    assert_eq!(code, 2);
    let (_, _, code) = raceline(&["soak", "--frobnicate"]);
    assert_eq!(code, 2);
}

#[test]
fn soak_jobs_are_byte_identical() {
    let base = raceline(SOAK);
    for jobs in ["2", "8"] {
        let mut args = SOAK.to_vec();
        args.extend_from_slice(&["--jobs", jobs]);
        let (stdout, _, code) = raceline_env(&args, &[]);
        assert_eq!(code, base.2, "jobs {jobs}");
        assert_eq!(stdout, base.0, "summary must be byte-identical under --jobs {jobs}");
    }
}

/// The S3 contract: kill the harness *mid-checkpoint-write*, resume, and
/// get a summary — and a checkpoint log — byte-identical to the same-seed
/// uninterrupted run.
#[test]
fn soak_crash_mid_checkpoint_write_resumes_byte_identical() {
    // Reference: uninterrupted run with a checkpoint.
    let ref_ck = tmp("ref.soaklog");
    let _ = std::fs::remove_file(&ref_ck);
    let mut args = SOAK.to_vec();
    let ref_p = ref_ck.to_str().unwrap().to_string();
    args.extend_from_slice(&["--checkpoint", &ref_p]);
    let (ref_out, _, ref_code) = raceline(&args);
    assert_eq!(ref_code, 1);
    let ref_log = std::fs::read_to_string(&ref_ck).expect("reference log written");
    let lines = ref_log.lines().count();
    assert!(lines > 6, "need a multi-phase log to tear\n{ref_log}");

    // Crash run: same spec, torn write halfway through the line stream.
    let crash_ck = tmp("crash.soaklog");
    let _ = std::fs::remove_file(&crash_ck);
    let crash_p = crash_ck.to_str().unwrap().to_string();
    let mut args = SOAK.to_vec();
    args.extend_from_slice(&["--checkpoint", &crash_p]);
    let torn_at = (lines / 2).to_string();
    let (_, stderr, code) = raceline_env(&args, &[("RACELINE_TEST_TORN_WRITE", &torn_at)]);
    assert_eq!(code, 42, "armed torn write must crash the harness\n{stderr}");
    let torn = std::fs::read_to_string(&crash_ck).expect("partial log on disk");
    assert!(!torn.ends_with('\n'), "the final line must be torn mid-write");
    assert!(ref_log.len() > torn.len(), "crash log is a strict prefix");

    // Resume: repair the torn tail, finish the remaining phases.
    let (stdout, stderr, code) = raceline(&args);
    assert_eq!(code, 1, "{stderr}");
    assert!(
        stderr.contains("checkpoint repaired") || stderr.contains("resuming at phase"),
        "resume must announce itself\n{stderr}"
    );
    assert_eq!(stdout, ref_out, "resumed summary must be byte-identical");
    let resumed = std::fs::read_to_string(&crash_ck).unwrap();
    assert_eq!(resumed, ref_log, "resumed log must be byte-identical");
}

/// A divergent spec must not silently resume into someone else's log.
#[test]
fn soak_refuses_a_checkpoint_from_a_different_spec() {
    let ck = tmp("mismatch.soaklog");
    let _ = std::fs::remove_file(&ck);
    let p = ck.to_str().unwrap().to_string();
    let mut args = SOAK.to_vec();
    args.extend_from_slice(&["--checkpoint", &p]);
    let (_, _, code) = raceline(&args);
    assert_eq!(code, 1);
    let (_, stderr, code) = raceline(&[
        "soak",
        "--dialogs",
        "2000",
        "--phases",
        "4",
        "--seed",
        "78",
        "--checkpoint",
        &p,
    ]);
    assert_eq!(code, 2, "spec mismatch is an error\n{stderr}");
    assert!(stderr.contains("different parameters"), "{stderr}");
}

/// Same crash hook against the explore sweep's checkpoint writer: tear the
/// save mid-line, then resume and converge on the identical summary.
#[test]
fn explore_checkpoint_crash_mid_write_resumes_identically() {
    let (ref_out, _, ref_code) = raceline(&["check", SAMPLE, "--explore", "6"]);
    assert_eq!(ref_code, 1);

    let ck = tmp("explore.checkpoint");
    let _ = std::fs::remove_file(&ck);
    let p = ck.to_str().unwrap().to_string();
    let args = ["check", SAMPLE, "--explore", "6", "--checkpoint", &p];
    let (_, stderr, code) = raceline_env(&args, &[("RACELINE_TEST_TORN_WRITE", "3")]);
    assert_eq!(code, 42, "torn write must crash the save\n{stderr}");
    let torn = std::fs::read_to_string(&ck).expect("partial checkpoint on disk");
    assert!(!torn.ends_with('\n'), "final line torn mid-write");

    let (stdout, stderr, code) = raceline(&args);
    assert_eq!(code, ref_code, "{stderr}");
    assert!(stderr.contains("repaired truncated checkpoint"), "{stderr}");
    assert_eq!(stdout, ref_out, "post-resume summary matches the uninterrupted sweep");
}

/// `analyze --repair` on a crash-truncated trace: strict mode refuses,
/// repair mode analyzes the intact prefix and says what it dropped.
#[test]
fn analyze_repair_recovers_a_crash_truncated_trace() {
    let trace = tmp("repair.rltrace");
    let trace_p = trace.to_str().unwrap().to_string();
    let (_, stderr, code) = raceline(&["record", SAMPLE, "--out", &trace_p, "--epoch-events", "8"]);
    assert_eq!(code, 0, "{stderr}");
    let bytes = std::fs::read(&trace).unwrap();

    // A whole trace under --repair is the identity.
    let strict = raceline(&["analyze", &trace_p]);
    let (stdout, stderr, code) = raceline(&["analyze", &trace_p, "--repair"]);
    assert_eq!((stdout, code), (strict.0.clone(), strict.2));
    assert!(!stderr.contains("repaired:"), "whole trace needs no repair\n{stderr}");

    // Tear the trace the way a dying recorder would: drop the tail.
    let torn = tmp("repair_torn.rltrace");
    let torn_p = torn.to_str().unwrap().to_string();
    std::fs::write(&torn, &bytes[..bytes.len() * 3 / 4]).unwrap();
    let (_, stderr, code) = raceline(&["analyze", &torn_p]);
    assert_eq!(code, 2, "strict analyze refuses a torn trace\n{stderr}");
    let (stdout, stderr, code) = raceline(&["analyze", &torn_p, "--repair"]);
    assert!(code == 0 || code == 1, "repair analyzes the prefix\n{stderr}");
    assert!(stderr.contains("repaired: dropped"), "{stderr}");
    assert!(stderr.contains("intact epoch"), "{stderr}");
    // Deterministic across --jobs, same as the strict path.
    let sharded = raceline(&["analyze", &torn_p, "--repair", "--jobs", "8"]);
    assert_eq!((sharded.0, sharded.2), (stdout, code));
}

/// `bench-snapshot --soak` emits the soak benchmark schema.
#[test]
fn bench_snapshot_soak_emits_schema() {
    let out = tmp("bench_soak.json");
    let out_p = out.to_str().unwrap().to_string();
    let (_, stderr, code) =
        raceline(&["bench-snapshot", "--soak", "--samples", "1", "--out", &out_p]);
    assert_eq!(code, 0, "{stderr}");
    let json = std::fs::read_to_string(&out).unwrap();
    for key in [
        "\"workload\"",
        "\"median_ns\"",
        "\"soak-hybrid-filter\"",
        "\"soak-detection-off\"",
        "\"dialogs_per_sec\"",
        "\"peak_live_granules\"",
    ] {
        assert!(json.contains(key), "missing {key} in\n{json}");
    }
}
