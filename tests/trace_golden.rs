//! Golden equivalence: for the paper's T1–T8 evaluation cases, feeding a
//! recorded trace through any detector configuration must reproduce the
//! inline run's reports *byte for byte* — same renders, same order, same
//! truncation flag — and must do so identically for any `--jobs` count.
//! Plus the robustness half of the contract: corrupting or truncating a
//! trace anywhere yields a structured error, never a panic or a wrong
//! answer.

use helgrind_core::replay::{analyze_trace_bytes, analyze_trace_repair, ReplayDetector};
use helgrind_core::{
    DetectorConfig, DjitDetector, EraserDetector, HybridDetector, Report, SuppressionSet,
};
use raceline_trace::reader::{parse_trace, parse_trace_repair};
use raceline_trace::writer::TraceWriter;
use vexec::sched::RoundRobin;
use vexec::vm::{run_flat, Termination, VmOptions};

const ENGINES: &[&str] = &["original", "hwlc", "hwlc-dr", "djit", "hybrid", "hybrid-queue"];

fn config_of(name: &str) -> DetectorConfig {
    match name {
        "original" => DetectorConfig::original(),
        "hwlc" => DetectorConfig::hwlc(),
        "hwlc-dr" => DetectorConfig::hwlc_dr(),
        "djit" => DetectorConfig::djit(),
        "hybrid" => DetectorConfig::hybrid(),
        "hybrid-queue" => DetectorConfig::hybrid_queue_hb(),
        other => panic!("unknown engine {other}"),
    }
}

/// Inline run: the reference the offline path must match byte for byte.
fn run_inline(
    flat: &vexec::ir::lower::FlatProgram,
    engine: &str,
) -> (Vec<String>, bool, Termination) {
    let cfg = config_of(engine);
    let (reports, truncated, termination): (Vec<Report>, bool, Termination) = match engine {
        "djit" => {
            let mut det = DjitDetector::new(cfg);
            let r = run_flat(flat, &mut det, &mut RoundRobin::new(), VmOptions::default());
            (det.sink.take_reports(), det.truncated(), r.termination)
        }
        "hybrid" | "hybrid-queue" => {
            let mut det = HybridDetector::new(cfg);
            let r = run_flat(flat, &mut det, &mut RoundRobin::new(), VmOptions::default());
            (det.sink.take_reports(), det.truncated(), r.termination)
        }
        _ => {
            let mut det = EraserDetector::with_suppressions(cfg, SuppressionSet::new());
            let r = run_flat(flat, &mut det, &mut RoundRobin::new(), VmOptions::default());
            (det.sink.take_reports(), det.truncated(), r.termination)
        }
    };
    (reports.iter().map(Report::render).collect(), truncated, termination)
}

fn replay_detector(engine: &str) -> ReplayDetector {
    let cfg = config_of(engine);
    match engine {
        "djit" => ReplayDetector::Djit(DjitDetector::new(cfg)),
        "hybrid" | "hybrid-queue" => ReplayDetector::Hybrid(HybridDetector::new(cfg)),
        _ => ReplayDetector::Eraser(EraserDetector::with_suppressions(cfg, SuppressionSet::new())),
    }
}

fn analyze(bytes: &[u8], engine: &str, jobs: usize) -> (Vec<String>, bool) {
    let outcome = analyze_trace_bytes(bytes, replay_detector(engine), jobs, 0)
        .expect("recorded trace must analyze cleanly");
    (outcome.reports.iter().map(Report::render).collect(), outcome.truncated)
}

#[test]
fn record_analyze_matches_inline_for_all_cases_and_engines() {
    for tc in sipsim::testcases() {
        let flat = tc.build().program.lower();
        // Small epochs so even the small cases exercise multi-epoch decode
        // and the codec reset at every boundary.
        let bytes = record_bytes(&flat, 512);
        for engine in ENGINES {
            let (inline_reports, inline_trunc, _) = run_inline(&flat, engine);
            let (replayed, replay_trunc) = analyze(&bytes, engine, 1);
            assert_eq!(
                replayed, inline_reports,
                "case {} engine {engine}: offline reports differ from inline",
                tc.name
            );
            assert_eq!(replay_trunc, inline_trunc, "case {} engine {engine}", tc.name);
        }
    }
}

#[test]
fn sharded_analysis_is_bit_identical_to_sequential() {
    for tc in sipsim::testcases() {
        let flat = tc.build().program.lower();
        let bytes = record_bytes(&flat, 128);
        assert!(
            parse_trace(&bytes).expect("valid trace").epochs.len() > 1,
            "case {} must span several epochs for this test to bite",
            tc.name
        );
        for engine in ["hwlc-dr", "hybrid"] {
            let seq = analyze(&bytes, engine, 1);
            for jobs in [2, 4, 8] {
                assert_eq!(
                    analyze(&bytes, engine, jobs),
                    seq,
                    "case {} engine {engine} jobs {jobs}",
                    tc.name
                );
            }
        }
    }
}

#[test]
fn every_byte_mutation_is_detected() {
    let tc = &sipsim::testcases()[0];
    let flat = tc.build().program.lower();
    let bytes = record_bytes(&flat, 256);
    parse_trace(&bytes).expect("unmutated trace parses");
    for i in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0xFF;
        let r = std::panic::catch_unwind(|| {
            analyze_trace_bytes(&mutated, replay_detector("hwlc-dr"), 1, 0).map(|_| ())
        });
        match r {
            Ok(Err(_)) => {}
            Ok(Ok(())) => panic!("flipping byte {i} went undetected"),
            Err(_) => panic!("flipping byte {i} caused a panic"),
        }
    }
}

#[test]
fn every_truncation_is_detected() {
    let tc = &sipsim::testcases()[0];
    let flat = tc.build().program.lower();
    let bytes = record_bytes(&flat, 256);
    for len in 0..bytes.len() {
        let r = std::panic::catch_unwind(|| parse_trace(&bytes[..len]).map(|_| ()));
        match r {
            Ok(Err(_)) => {}
            Ok(Ok(())) => panic!("prefix of {len} bytes parsed as a complete trace"),
            Err(_) => panic!("prefix of {len} bytes caused a panic"),
        }
    }
}

// -------------------------------------------------------------------
// `--repair`: crash-truncated traces recover to their intact prefix.
// -------------------------------------------------------------------

#[test]
fn repair_of_a_whole_trace_is_the_identity() {
    let tc = &sipsim::testcases()[0];
    let flat = tc.build().program.lower();
    let bytes = record_bytes(&flat, 256);
    let rt = parse_trace_repair(&bytes).expect("whole trace");
    assert!(!rt.repaired);
    assert_eq!(rt.dropped_bytes, 0);
    let strict = analyze(&bytes, "hwlc-dr", 1);
    let (outcome, info) =
        analyze_trace_repair(&bytes, replay_detector("hwlc-dr"), 1, 0).expect("whole trace");
    assert!(!info.repaired);
    let tolerant: Vec<String> = outcome.reports.iter().map(Report::render).collect();
    assert_eq!((tolerant, outcome.truncated), strict);
}

/// Every truncation point either fails cleanly or recovers an intact
/// prefix whose analysis is a *prefix* of the full run's reports — a
/// crash can lose the tail of the story but never rewrite it.
#[test]
fn every_truncation_repairs_to_an_intact_prefix() {
    let tc = &sipsim::testcases()[0];
    let flat = tc.build().program.lower();
    let bytes = record_bytes(&flat, 256);
    let full_epochs = parse_trace(&bytes).expect("valid trace").epochs.len();
    assert!(full_epochs > 1, "need several epochs for this test to bite");
    let (full_reports, _) = analyze(&bytes, "hwlc-dr", 1);

    let mut prev_kept = 0usize;
    let mut recovered_any = false;
    for len in 0..bytes.len() {
        let r = std::panic::catch_unwind(|| parse_trace_repair(&bytes[..len]));
        let rt = match r {
            Ok(Ok(rt)) => rt,
            Ok(Err(_)) => continue, // torn before anything usable: clean error
            Err(_) => panic!("repairing a {len}-byte prefix panicked"),
        };
        assert!(rt.repaired, "a strict prefix of {len} bytes cannot be a whole trace");
        // A cut inside the trailer keeps every epoch — the body is whole.
        let kept = rt.parsed.epochs.len();
        assert!(kept <= full_epochs, "prefix of {len} bytes grew epochs: {kept} > {full_epochs}");
        assert!(kept >= prev_kept, "kept epochs went backwards at {len}: {prev_kept} -> {kept}");
        assert!(rt.dropped_bytes <= len, "dropped more bytes than the prefix holds at {len}");
        // Analyzing every recoverable prefix is quadratic; do it whenever
        // the recovered epoch count changes and on a fixed stride between.
        if kept > prev_kept || len % 97 == 0 {
            let (outcome, info) =
                analyze_trace_repair(&bytes[..len], replay_detector("hwlc-dr"), 1, 0)
                    .expect("recovered prefix must analyze cleanly");
            assert!(info.repaired);
            let reports: Vec<String> = outcome.reports.iter().map(Report::render).collect();
            assert!(
                full_reports.starts_with(&reports[..]),
                "prefix of {len} bytes ({kept} epochs) produced reports that are not a \
                 prefix of the full run's:\n{reports:#?}\nvs\n{full_reports:#?}"
            );
            recovered_any = true;
        }
        prev_kept = prev_kept.max(kept);
    }
    assert!(recovered_any, "no truncation point recovered any epochs");
    assert!(prev_kept > 0, "repair never kept a single epoch");
}

/// Repair must never paper over real corruption: flipping any byte of a
/// *complete* file either propagates a structured error or — when the
/// flip is indistinguishable from a torn tail (e.g. a payload length
/// byte) — visibly drops epochs. It never passes the trace off as whole.
#[test]
fn repair_declines_interior_corruption() {
    let tc = &sipsim::testcases()[0];
    let flat = tc.build().program.lower();
    let bytes = record_bytes(&flat, 256);
    let full_epochs = parse_trace(&bytes).expect("valid trace").epochs.len();
    for i in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0xFF;
        let r = std::panic::catch_unwind(|| parse_trace_repair(&mutated));
        match r {
            Ok(Err(_)) => {}
            Ok(Ok(rt)) => {
                // A flip that mimics a torn tail (e.g. a payload length
                // byte, or a footer byte) may recover — but the recovery
                // is always *flagged*, never passed off as a whole trace.
                assert!(rt.repaired, "flipping byte {i} was silently accepted as a whole trace");
                assert!(rt.parsed.epochs.len() <= full_epochs, "flipping byte {i} grew epochs");
            }
            Err(_) => panic!("flipping byte {i} caused a panic in repair"),
        }
    }
}

/// Sharded repair analysis is bit-identical to sequential, same as the
/// strict path: the synthesized footer feeds the same shard planner.
#[test]
fn repaired_sharded_analysis_matches_sequential() {
    let tc = &sipsim::testcases()[0];
    let flat = tc.build().program.lower();
    let bytes = record_bytes(&flat, 128);
    // Tear the trace inside its final epoch's payload.
    let cut = bytes.len() - 9;
    let rt = parse_trace_repair(&bytes[..cut]).expect("recoverable");
    assert!(rt.repaired && !rt.parsed.epochs.is_empty());
    let render = |jobs: usize| {
        let (outcome, _) = analyze_trace_repair(&bytes[..cut], replay_detector("hybrid"), jobs, 0)
            .expect("recovered prefix analyzes");
        outcome.reports.iter().map(Report::render).collect::<Vec<_>>()
    };
    let seq = render(1);
    for jobs in [2, 4, 8] {
        assert_eq!(render(jobs), seq, "jobs {jobs}");
    }
}

/// Record a run into an in-memory buffer and hand the bytes back.
fn record_bytes(flat: &vexec::ir::lower::FlatProgram, epoch_events: u64) -> Vec<u8> {
    use std::io::Write;
    use std::sync::{Arc, Mutex};

    /// `TraceWriter::finish` consumes the writer without returning the
    /// sink, so share the buffer with the test through an Arc.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let sink = SharedBuf::default();
    let mut writer = TraceWriter::new(sink.clone()).with_epoch_events(epoch_events);
    let r = run_flat(flat, &mut writer, &mut RoundRobin::new(), VmOptions::default());
    writer
        .finish(&r.termination, &r.stats, r.faults.as_ref())
        .expect("in-memory trace write cannot fail");
    let bytes = sink.0.lock().unwrap().clone();
    bytes
}
