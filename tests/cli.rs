//! Integration tests for the `raceline` CLI binary, driven through the
//! real executable (CARGO_BIN_EXE) on the shipped sample program.

use std::process::Command;

fn raceline(args: &[&str]) -> (String, String, i32) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_raceline")).args(args).output().expect("run raceline");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

const SAMPLE: &str = "examples/programs/session.mcpp";

#[test]
fn check_finds_the_real_race_under_hwlc_dr() {
    let (stdout, stderr, code) = raceline(&["check", SAMPLE, "--detector", "hwlc-dr"]);
    assert_eq!(code, 1, "warnings => nonzero exit\n{stdout}{stderr}");
    assert!(stdout.contains("Possible Race (write)"));
    assert!(stdout.contains("session.mcpp:20"), "the unlocked counter line\n{stdout}");
    assert!(stderr.contains("1 delete site(s) annotated"));
    assert!(stderr.contains("1 warning(s)"));
    // No destructor FP: the annotation pass + DR removed it.
    assert!(!stdout.contains("~Session"));
}

#[test]
fn original_config_also_reports_the_destructor_fp() {
    let (stdout, _, code) = raceline(&["check", SAMPLE, "--detector", "original"]);
    assert_eq!(code, 1);
    let n = stdout.matches("Possible Race").count();
    assert_eq!(n, 2, "real race + destructor FP\n{stdout}");
    assert!(stdout.contains("~Session"), "{stdout}");
}

#[test]
fn raw_units_keep_their_destructor_fp() {
    let (stdout, _, code) = raceline(&["check", "--raw", SAMPLE, "--detector", "hwlc-dr"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("~Session"), "uninstrumented source warns\n{stdout}");
}

#[test]
fn gen_suppressions_emits_matching_entries() {
    let (stdout, _, _) =
        raceline(&["check", SAMPLE, "--detector", "hwlc-dr", "--gen-suppressions"]);
    assert!(stdout.contains("Helgrind:Race"), "{stdout}");
    assert!(stdout.contains("fun:use_session"), "{stdout}");

    // Write the generated suppression to a file and re-check: silence.
    // The suppression block is the lines from a bare "{" to a bare "}".
    let lines: Vec<&str> = stdout.lines().collect();
    let start = lines.iter().position(|l| l.trim() == "{").unwrap();
    let end = lines.iter().position(|l| l.trim() == "}").unwrap();
    let block = lines[start..=end].join("\n");
    let supp_path = std::env::temp_dir().join("raceline_gen.supp");
    std::fs::write(&supp_path, block).unwrap();
    let (stdout2, stderr2, code2) = raceline(&[
        "check",
        SAMPLE,
        "--detector",
        "hwlc-dr",
        "--suppressions",
        supp_path.to_str().unwrap(),
    ]);
    assert_eq!(code2, 0, "{stdout2}{stderr2}");
    assert!(stderr2.contains("0 warning(s)"));
}

#[test]
fn explore_mode_aggregates_schedules() {
    let (stdout, _, code) = raceline(&["check", SAMPLE, "--explore", "8"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("explored 8 schedules"), "{stdout}");
    assert!(stdout.contains("8 clean"), "{stdout}");
    assert!(stdout.contains("/8"), "per-location hit counts\n{stdout}");
}

#[test]
fn emit_annotated_prints_fig4_view() {
    let (stdout, _, _) = raceline(&["check", SAMPLE, "--emit-annotated"]);
    assert!(stdout.contains("delete ca_deletor_single(s);"), "{stdout}");
    assert!(stdout.contains("VALGRIND_HG_DESTRUCT"), "{stdout}");
}

#[test]
fn pct_schedule_accepted() {
    let (_, stderr, code) = raceline(&["check", SAMPLE, "--schedule", "pct:7:3"]);
    assert!(code == 0 || code == 1, "{stderr}");
}

#[test]
fn bad_usage_exits_2() {
    let (_, _, code) = raceline(&["check"]);
    assert_eq!(code, 2);
    let (_, _, code) = raceline(&["frobnicate"]);
    assert_eq!(code, 2);
    let (_, _, code) = raceline(&["lint"]);
    assert_eq!(code, 2);
}

// -------------------------------------------------------------------
// `raceline lint`: the static passes, no execution.
// -------------------------------------------------------------------

#[test]
fn lint_reports_the_seeded_race_and_nothing_else() {
    let (stdout, stderr, code) = raceline(&["lint", SAMPLE]);
    assert_eq!(code, 1, "{stdout}{stderr}");
    assert!(stdout.contains("Possible Race (write)"), "{stdout}");
    assert!(stdout.contains("session.mcpp:20"), "{stdout}");
    assert!(stderr.contains("2 finding(s)"), "write + read of g_racy_hits\n{stderr}");
    // The locked field/global updates and the rwlock pair stay silent.
    assert!(!stdout.contains("g_pending"), "{stdout}");
    assert!(!stdout.contains("g_table"), "{stdout}");
}

#[test]
fn lint_flags_racy_global_fixture() {
    let (stdout, _, code) = raceline(&["lint", "examples/programs/racy_global.mcpp"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("Possible Race (write)"), "{stdout}");
    assert!(stdout.contains("racy_global.mcpp:7"), "{stdout}");
}

#[test]
fn lint_predicts_ab_ba_cycle() {
    let (stdout, _, code) = raceline(&["lint", "examples/programs/ab_ba.mcpp"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("Possible LockOrder"), "{stdout}");
    assert!(stdout.contains("lock order cycle"), "{stdout}");
    // Both acquisition sites of the inversion are reported; the data
    // accesses under both locks are not races.
    assert!(stdout.contains("ab_ba.mcpp:10"), "t1's lock(g_b)\n{stdout}");
    assert!(stdout.contains("ab_ba.mcpp:18"), "t2's lock(g_a)\n{stdout}");
    assert!(!stdout.contains("Possible Race"), "{stdout}");
}

#[test]
fn lint_clean_fixture_has_zero_findings() {
    let (stdout, stderr, code) = raceline(&["lint", "examples/programs/clean_locked.mcpp"]);
    assert_eq!(code, 0, "{stdout}{stderr}");
    assert!(stderr.contains("0 finding(s)"), "{stderr}");
}

#[test]
fn lint_flags_unannotated_polymorphic_delete_in_raw_units() {
    let (stdout, _, code) =
        raceline(&["lint", "--raw", "examples/programs/unannotated_delete.mcpp"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("Possible UnannotatedDelete"), "{stdout}");
    assert!(stdout.contains("unannotated_delete.mcpp:8"), "{stdout}");

    // Instrumented, the annotation pass rewrites the delete: silence.
    let (_, stderr, code) = raceline(&["lint", "examples/programs/unannotated_delete.mcpp"]);
    assert_eq!(code, 0, "{stderr}");
}

#[test]
fn lint_json_is_machine_readable() {
    let (stdout, _, code) = raceline(&["lint", SAMPLE, "--json"]);
    assert_eq!(code, 1);
    let line = stdout.lines().next().unwrap();
    assert!(line.starts_with('{') && line.ends_with('}'), "{stdout}");
    assert!(line.contains("\"findings\":2"), "{stdout}");
    assert!(line.contains("\"kind\":\"RaceWrite\""), "{stdout}");
    assert!(line.contains("\"line\":20"), "{stdout}");
}

// -------------------------------------------------------------------
// `raceline check --static-cross-check` and `--json`.
// -------------------------------------------------------------------

#[test]
fn cross_check_labels_confirmed_and_static_only() {
    let (stdout, _, code) = raceline(&["check", SAMPLE, "--static-cross-check"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("static cross-check:"), "{stdout}");
    // The dynamic write race at line 20 is confirmed by the static side;
    // the static read race at the same line was not in the dynamic run.
    assert!(stdout.contains("[confirmed-both] Race (write)"), "{stdout}");
    assert!(stdout.contains("[static-only]"), "{stdout}");
}

#[test]
fn explore_mode_honours_cross_check() {
    let (stdout, _, code) = raceline(&["check", SAMPLE, "--explore", "4", "--static-cross-check"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("explored 4 schedules"), "{stdout}");
    assert!(stdout.contains("static cross-check:"), "{stdout}");
    assert!(stdout.contains("[confirmed-both] Race (write)"), "{stdout}");
}

#[test]
fn check_json_reports_warnings_and_termination() {
    let (stdout, _, code) = raceline(&["check", SAMPLE, "--json"]);
    assert_eq!(code, 1);
    let line = stdout.lines().next().unwrap();
    assert!(line.starts_with('{'), "{stdout}");
    assert!(line.contains("\"warnings\":1"), "{stdout}");
    assert!(line.contains("\"termination\":\"AllExited\""), "{stdout}");
    assert!(line.contains("\"kind\":\"RaceWrite\""), "{stdout}");
}

#[test]
fn check_json_with_cross_check_embeds_the_join() {
    let (stdout, _, _) = raceline(&["check", SAMPLE, "--json", "--static-cross-check"]);
    let line = stdout.lines().next().unwrap();
    assert!(line.contains("\"static_cross_check\""), "{stdout}");
    assert!(line.contains("\"confirmed_both\""), "{stdout}");
    assert!(line.contains("\"static_only\""), "{stdout}");
}
