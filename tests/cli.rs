//! Integration tests for the `raceline` CLI binary, driven through the
//! real executable (CARGO_BIN_EXE) on the shipped sample program.

use std::process::Command;

fn raceline(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_raceline"))
        .args(args)
        .output()
        .expect("run raceline");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

const SAMPLE: &str = "examples/programs/session.mcpp";

#[test]
fn check_finds_the_real_race_under_hwlc_dr() {
    let (stdout, stderr, code) = raceline(&["check", SAMPLE, "--detector", "hwlc-dr"]);
    assert_eq!(code, 1, "warnings => nonzero exit\n{stdout}{stderr}");
    assert!(stdout.contains("Possible Race (write)"));
    assert!(stdout.contains("session.mcpp:20"), "the unlocked counter line\n{stdout}");
    assert!(stderr.contains("1 delete site(s) annotated"));
    assert!(stderr.contains("1 warning(s)"));
    // No destructor FP: the annotation pass + DR removed it.
    assert!(!stdout.contains("~Session"));
}

#[test]
fn original_config_also_reports_the_destructor_fp() {
    let (stdout, _, code) = raceline(&["check", SAMPLE, "--detector", "original"]);
    assert_eq!(code, 1);
    let n = stdout.matches("Possible Race").count();
    assert_eq!(n, 2, "real race + destructor FP\n{stdout}");
    assert!(stdout.contains("~Session"), "{stdout}");
}

#[test]
fn raw_units_keep_their_destructor_fp() {
    let (stdout, _, code) = raceline(&["check", "--raw", SAMPLE, "--detector", "hwlc-dr"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("~Session"), "uninstrumented source warns\n{stdout}");
}

#[test]
fn gen_suppressions_emits_matching_entries() {
    let (stdout, _, _) =
        raceline(&["check", SAMPLE, "--detector", "hwlc-dr", "--gen-suppressions"]);
    assert!(stdout.contains("Helgrind:Race"), "{stdout}");
    assert!(stdout.contains("fun:use_session"), "{stdout}");

    // Write the generated suppression to a file and re-check: silence.
    // The suppression block is the lines from a bare "{" to a bare "}".
    let lines: Vec<&str> = stdout.lines().collect();
    let start = lines.iter().position(|l| l.trim() == "{").unwrap();
    let end = lines.iter().position(|l| l.trim() == "}").unwrap();
    let block = lines[start..=end].join("\n");
    let supp_path = std::env::temp_dir().join("raceline_gen.supp");
    std::fs::write(&supp_path, block).unwrap();
    let (stdout2, stderr2, code2) = raceline(&[
        "check",
        SAMPLE,
        "--detector",
        "hwlc-dr",
        "--suppressions",
        supp_path.to_str().unwrap(),
    ]);
    assert_eq!(code2, 0, "{stdout2}{stderr2}");
    assert!(stderr2.contains("0 warning(s)"));
}

#[test]
fn explore_mode_aggregates_schedules() {
    let (stdout, _, code) = raceline(&["check", SAMPLE, "--explore", "8"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("explored 8 schedules"), "{stdout}");
    assert!(stdout.contains("8 clean"), "{stdout}");
    assert!(stdout.contains("/8"), "per-location hit counts\n{stdout}");
}

#[test]
fn emit_annotated_prints_fig4_view() {
    let (stdout, _, _) = raceline(&["check", SAMPLE, "--emit-annotated"]);
    assert!(stdout.contains("delete ca_deletor_single(s);"), "{stdout}");
    assert!(stdout.contains("VALGRIND_HG_DESTRUCT"), "{stdout}");
}

#[test]
fn pct_schedule_accepted() {
    let (_, stderr, code) = raceline(&["check", SAMPLE, "--schedule", "pct:7:3"]);
    assert!(code == 0 || code == 1, "{stderr}");
}

#[test]
fn bad_usage_exits_2() {
    let (_, _, code) = raceline(&["check"]);
    assert_eq!(code, 2);
    let (_, _, code) = raceline(&["frobnicate"]);
    assert_eq!(code, 2);
}
