//! Integration tests for the `raceline` CLI binary, driven through the
//! real executable (CARGO_BIN_EXE) on the shipped sample program.

use std::process::Command;

fn raceline(args: &[&str]) -> (String, String, i32) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_raceline")).args(args).output().expect("run raceline");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

const SAMPLE: &str = "examples/programs/session.mcpp";

#[test]
fn check_finds_the_real_race_under_hwlc_dr() {
    let (stdout, stderr, code) = raceline(&["check", SAMPLE, "--detector", "hwlc-dr"]);
    assert_eq!(code, 1, "warnings => nonzero exit\n{stdout}{stderr}");
    assert!(stdout.contains("Possible Race (write)"));
    assert!(stdout.contains("session.mcpp:20"), "the unlocked counter line\n{stdout}");
    assert!(stderr.contains("1 delete site(s) annotated"));
    assert!(stderr.contains("1 warning(s)"));
    // No destructor FP: the annotation pass + DR removed it.
    assert!(!stdout.contains("~Session"));
}

#[test]
fn original_config_also_reports_the_destructor_fp() {
    let (stdout, _, code) = raceline(&["check", SAMPLE, "--detector", "original"]);
    assert_eq!(code, 1);
    let n = stdout.matches("Possible Race").count();
    assert_eq!(n, 2, "real race + destructor FP\n{stdout}");
    assert!(stdout.contains("~Session"), "{stdout}");
}

#[test]
fn raw_units_keep_their_destructor_fp() {
    let (stdout, _, code) = raceline(&["check", "--raw", SAMPLE, "--detector", "hwlc-dr"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("~Session"), "uninstrumented source warns\n{stdout}");
}

#[test]
fn gen_suppressions_emits_matching_entries() {
    let (stdout, _, _) =
        raceline(&["check", SAMPLE, "--detector", "hwlc-dr", "--gen-suppressions"]);
    assert!(stdout.contains("Helgrind:Race"), "{stdout}");
    assert!(stdout.contains("fun:use_session"), "{stdout}");

    // Write the generated suppression to a file and re-check: silence.
    // The suppression block is the lines from a bare "{" to a bare "}".
    let lines: Vec<&str> = stdout.lines().collect();
    let start = lines.iter().position(|l| l.trim() == "{").unwrap();
    let end = lines.iter().position(|l| l.trim() == "}").unwrap();
    let block = lines[start..=end].join("\n");
    let supp_path = std::env::temp_dir().join("raceline_gen.supp");
    std::fs::write(&supp_path, block).unwrap();
    let (stdout2, stderr2, code2) = raceline(&[
        "check",
        SAMPLE,
        "--detector",
        "hwlc-dr",
        "--suppressions",
        supp_path.to_str().unwrap(),
    ]);
    assert_eq!(code2, 0, "{stdout2}{stderr2}");
    assert!(stderr2.contains("0 warning(s)"));
}

#[test]
fn explore_mode_aggregates_schedules() {
    let (stdout, _, code) = raceline(&["check", SAMPLE, "--explore", "8"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("explored 8 schedules"), "{stdout}");
    assert!(stdout.contains("8 clean"), "{stdout}");
    assert!(stdout.contains("/8"), "per-location hit counts\n{stdout}");
}

#[test]
fn emit_annotated_prints_fig4_view() {
    let (stdout, _, _) = raceline(&["check", SAMPLE, "--emit-annotated"]);
    assert!(stdout.contains("delete ca_deletor_single(s);"), "{stdout}");
    assert!(stdout.contains("VALGRIND_HG_DESTRUCT"), "{stdout}");
}

#[test]
fn pct_schedule_accepted() {
    let (_, stderr, code) = raceline(&["check", SAMPLE, "--schedule", "pct:7:3"]);
    assert!(code == 0 || code == 1, "{stderr}");
}

#[test]
fn bad_usage_exits_2() {
    let (_, _, code) = raceline(&["check"]);
    assert_eq!(code, 2);
    let (_, _, code) = raceline(&["frobnicate"]);
    assert_eq!(code, 2);
    let (_, _, code) = raceline(&["lint"]);
    assert_eq!(code, 2);
}

// -------------------------------------------------------------------
// `raceline lint`: the static passes, no execution.
// -------------------------------------------------------------------

#[test]
fn lint_reports_the_seeded_race_and_nothing_else() {
    let (stdout, stderr, code) = raceline(&["lint", SAMPLE]);
    assert_eq!(code, 1, "{stdout}{stderr}");
    assert!(stdout.contains("Possible Race (write)"), "{stdout}");
    assert!(stdout.contains("session.mcpp:20"), "{stdout}");
    assert!(stderr.contains("2 finding(s)"), "write + read of g_racy_hits\n{stderr}");
    // The locked field/global updates and the rwlock pair stay silent.
    assert!(!stdout.contains("g_pending"), "{stdout}");
    assert!(!stdout.contains("g_table"), "{stdout}");
}

#[test]
fn lint_flags_racy_global_fixture() {
    let (stdout, _, code) = raceline(&["lint", "examples/programs/racy_global.mcpp"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("Possible Race (write)"), "{stdout}");
    assert!(stdout.contains("racy_global.mcpp:7"), "{stdout}");
}

#[test]
fn lint_predicts_ab_ba_cycle() {
    let (stdout, _, code) = raceline(&["lint", "examples/programs/ab_ba.mcpp"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("Possible LockOrder"), "{stdout}");
    assert!(stdout.contains("lock order cycle"), "{stdout}");
    // Both acquisition sites of the inversion are reported; the data
    // accesses under both locks are not races.
    assert!(stdout.contains("ab_ba.mcpp:10"), "t1's lock(g_b)\n{stdout}");
    assert!(stdout.contains("ab_ba.mcpp:18"), "t2's lock(g_a)\n{stdout}");
    assert!(!stdout.contains("Possible Race"), "{stdout}");
}

#[test]
fn lint_clean_fixture_has_zero_findings() {
    let (stdout, stderr, code) = raceline(&["lint", "examples/programs/clean_locked.mcpp"]);
    assert_eq!(code, 0, "{stdout}{stderr}");
    assert!(stderr.contains("0 finding(s)"), "{stderr}");
}

#[test]
fn lint_flags_unannotated_polymorphic_delete_in_raw_units() {
    let (stdout, _, code) =
        raceline(&["lint", "--raw", "examples/programs/unannotated_delete.mcpp"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("Possible UnannotatedDelete"), "{stdout}");
    assert!(stdout.contains("unannotated_delete.mcpp:8"), "{stdout}");

    // Instrumented, the annotation pass rewrites the delete: silence.
    let (_, stderr, code) = raceline(&["lint", "examples/programs/unannotated_delete.mcpp"]);
    assert_eq!(code, 0, "{stderr}");
}

#[test]
fn lint_json_is_machine_readable() {
    let (stdout, _, code) = raceline(&["lint", SAMPLE, "--json"]);
    assert_eq!(code, 1);
    let line = stdout.lines().next().unwrap();
    assert!(line.starts_with('{') && line.ends_with('}'), "{stdout}");
    assert!(line.contains("\"findings\":2"), "{stdout}");
    assert!(line.contains("\"kind\":\"RaceWrite\""), "{stdout}");
    assert!(line.contains("\"line\":20"), "{stdout}");
}

// -------------------------------------------------------------------
// `raceline check --static-cross-check` and `--json`.
// -------------------------------------------------------------------

#[test]
fn cross_check_labels_confirmed_and_static_only() {
    let (stdout, _, code) = raceline(&["check", SAMPLE, "--static-cross-check"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("static cross-check:"), "{stdout}");
    // The dynamic write race at line 20 is confirmed by the static side;
    // the static read race at the same line was not in the dynamic run.
    assert!(stdout.contains("[confirmed-both] Race (write)"), "{stdout}");
    assert!(stdout.contains("[static-only]"), "{stdout}");
}

#[test]
fn explore_mode_honours_cross_check() {
    let (stdout, _, code) = raceline(&["check", SAMPLE, "--explore", "4", "--static-cross-check"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("explored 4 schedules"), "{stdout}");
    assert!(stdout.contains("static cross-check:"), "{stdout}");
    assert!(stdout.contains("[confirmed-both] Race (write)"), "{stdout}");
}

#[test]
fn check_json_reports_warnings_and_termination() {
    let (stdout, _, code) = raceline(&["check", SAMPLE, "--json"]);
    assert_eq!(code, 1);
    let line = stdout.lines().next().unwrap();
    assert!(line.starts_with('{'), "{stdout}");
    assert!(line.contains("\"warnings\":1"), "{stdout}");
    assert!(line.contains("\"termination\":\"AllExited\""), "{stdout}");
    assert!(line.contains("\"kind\":\"RaceWrite\""), "{stdout}");
}

#[test]
fn check_json_with_cross_check_embeds_the_join() {
    let (stdout, _, _) = raceline(&["check", SAMPLE, "--json", "--static-cross-check"]);
    let line = stdout.lines().next().unwrap();
    assert!(line.contains("\"static_cross_check\""), "{stdout}");
    assert!(line.contains("\"confirmed_both\""), "{stdout}");
    assert!(line.contains("\"static_only\""), "{stdout}");
}

// -------------------------------------------------------------------
// Exit-code contract (0 = clean, 1 = findings, 2 = tool/guest error),
// fault injection, budgets and `raceline chaos`.
// -------------------------------------------------------------------

/// A worker that allocates: under `--faults allocfail=1000` the `new`
/// returns null and the field write becomes a wild access (guest error).
const ALLOC_WORKER: &str = "\
class Obj { int x; ~Obj() {} };\n\
void worker() {\n\
    Obj* o = new Obj;\n\
    o->x = 1;\n\
    delete o;\n\
}\n\
void main() {\n\
    thread a = spawn worker();\n\
    join(a);\n\
}\n";

fn write_fixture(name: &str, text: &str) -> String {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, text).unwrap();
    path.to_str().unwrap().to_string()
}

#[test]
fn unreadable_input_exits_2() {
    let (_, stderr, code) = raceline(&["check", "/nonexistent/raceline-no-such-file.mcpp"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn guest_error_exits_2_with_diagnostic() {
    let path = write_fixture("raceline_allocfail.mcpp", ALLOC_WORKER);
    let (stdout, stderr, code) = raceline(&["check", &path, "--faults", "allocfail=1000,seed=1"]);
    assert_eq!(code, 2, "guest fault is a tool/guest error\n{stdout}{stderr}");
    assert!(stdout.contains("guest error:"), "{stdout}");

    // Same run in JSON: the fault is a field, not a crash.
    let (stdout, _, code) =
        raceline(&["check", &path, "--faults", "allocfail=1000,seed=1", "--json"]);
    assert_eq!(code, 2);
    let line = stdout.lines().next().unwrap();
    assert!(line.contains("\"guest_error\""), "{stdout}");
    assert!(line.contains("\"injected_faults\""), "{stdout}");

    // Without faults the same program is clean: exit 0.
    let (_, _, code) = raceline(&["check", &path]);
    assert_eq!(code, 0);
}

#[test]
fn slot_budget_reports_timed_out_not_error() {
    let (stdout, _, code) = raceline(&["check", SAMPLE, "--budget", "slots=10", "--json"]);
    assert!(code == 0 || code == 1, "fuel exhaustion is not an error: {stdout}");
    let line = stdout.lines().next().unwrap();
    assert!(line.contains("\"timed_out\":true"), "{stdout}");
    assert!(line.contains("\"termination\":\"FuelExhausted\""), "{stdout}");
}

#[test]
fn report_budget_degrades_with_truncated_flag() {
    // `original` reports 2 race locations on the sample; cap at 1.
    let (stdout, _, code) =
        raceline(&["check", SAMPLE, "--detector", "original", "--budget", "reports=1", "--json"]);
    assert_eq!(code, 1, "{stdout}");
    let line = stdout.lines().next().unwrap();
    assert!(line.contains("\"truncated\":true"), "{stdout}");
    assert!(line.contains("\"warnings\":1"), "capped to one stored report\n{stdout}");
}

#[test]
fn faults_are_deterministic_per_seed_and_plan() {
    let args = [
        "check",
        SAMPLE,
        "--schedule",
        "random:3",
        "--faults",
        "seed=9,wakeup=25,lockfail=25,kill=5",
        "--json",
    ];
    let (a, _, code_a) = raceline(&args);
    let (b, _, code_b) = raceline(&args);
    assert_eq!(code_a, code_b);
    assert_eq!(a, b, "same (seed, plan, schedule) must reproduce bit-identically");
}

#[test]
fn explore_checkpoint_round_trips() {
    let path = std::env::temp_dir().join("raceline_explore.ck");
    let _ = std::fs::remove_file(&path);
    let p = path.to_str().unwrap();
    let (stdout, _, code) = raceline(&["check", SAMPLE, "--explore", "6", "--checkpoint", p]);
    assert_eq!(code, 1, "{stdout}");
    let saved = std::fs::read_to_string(&path).unwrap();
    assert!(saved.starts_with("raceline-explore-checkpoint v1"), "{saved}");

    // Resuming a finished sweep re-runs nothing and aggregates the same
    // locations and hit counts (report *detail* is summarized to the top
    // stack frame in a checkpoint — the documented degradation).
    let (stdout2, stderr2, code2) =
        raceline(&["check", SAMPLE, "--explore", "6", "--checkpoint", p]);
    assert_eq!(code2, 1);
    assert!(stderr2.contains("resuming from"), "{stderr2}");
    assert!(stdout2.contains("explored 6 schedules: 6 clean"), "{stdout2}");
    assert!(stdout2.contains("[  6/6  ] Possible Race (write)"), "{stdout2}");
    assert!(stdout2.contains("session.mcpp:20"), "{stdout2}");
    assert_eq!(
        stdout.lines().next(),
        stdout2.lines().next(),
        "aggregate line must agree: {stdout} vs {stdout2}"
    );
}

#[test]
fn chaos_smoke_run_is_resilient() {
    let (stdout, stderr, code) =
        raceline(&["chaos", "--runs", "6", "--seed", "0xC0FFEE", "--cases", "T3", "--json"]);
    assert_eq!(code, 0, "{stdout}{stderr}");
    let line = stdout.lines().next().unwrap();
    assert!(line.contains("\"resilient\":true"), "{stdout}");
    assert!(line.contains("\"panics\":0"), "{stdout}");
    assert!(line.contains("\"nondeterministic\":0"), "{stdout}");
}

#[test]
fn no_filter_leaves_check_output_byte_identical() {
    for det in ["hwlc-dr", "djit", "hybrid"] {
        let (on_out, _, on_code) = raceline(&["check", SAMPLE, "--detector", det]);
        let (off_out, _, off_code) = raceline(&["check", SAMPLE, "--detector", det, "--no-filter"]);
        assert_eq!(on_code, off_code, "{det}: exit codes must agree");
        assert_eq!(on_out, off_out, "{det}: stdout must be byte-identical");
    }
}

#[test]
fn stats_flag_reports_to_stderr_only() {
    let (plain_out, plain_err, _) = raceline(&["check", SAMPLE, "--detector", "hybrid"]);
    let (stats_out, stats_err, code) =
        raceline(&["check", SAMPLE, "--detector", "hybrid", "--stats"]);
    assert_eq!(code, 1);
    assert_eq!(plain_out, stats_out, "--stats must not change stdout");
    assert!(!plain_err.contains("stats:"), "{plain_err}");
    assert!(stats_err.contains("stats: engine lockset processed"), "{stats_err}");
    assert!(stats_err.contains("stats: engine hb processed"), "{stats_err}");
    assert!(stats_err.contains("stats: filter elided"), "{stats_err}");
    assert!(stats_err.contains("hit rate"), "{stats_err}");
}

#[test]
fn no_filter_stats_omits_the_filter_line() {
    let (_, stderr, _) =
        raceline(&["check", SAMPLE, "--detector", "hwlc-dr", "--stats", "--no-filter"]);
    assert!(stderr.contains("stats: engine lockset processed"), "{stderr}");
    assert!(!stderr.contains("stats: filter"), "{stderr}");
}

#[test]
fn analyze_stats_reports_replay_engine_counters() {
    let trace = std::env::temp_dir().join("raceline_filter_stats.rltrace");
    let t = trace.to_str().unwrap();
    let (_, stderr, code) = raceline(&["record", SAMPLE, "--out", t, "--stats"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(
        stderr.contains("stats: filter elided"),
        "record --stats prints filter stats\n{stderr}"
    );

    let (a_out, a_err, a_code) = raceline(&["analyze", t, "--detector", "hwlc-dr", "--stats"]);
    assert_eq!(a_code, 1, "{a_out}{a_err}");
    assert!(a_err.contains("stats: engine lockset processed"), "{a_err}");

    // A filtered trace analyzes to the same report text as a --no-filter one.
    let trace2 = std::env::temp_dir().join("raceline_filter_stats_nf.rltrace");
    let t2 = trace2.to_str().unwrap();
    let (_, _, r_code) = raceline(&["record", SAMPLE, "--out", t2, "--no-filter"]);
    assert_eq!(r_code, 0);
    let (b_out, _, b_code) = raceline(&["analyze", t2, "--detector", "hwlc-dr"]);
    assert_eq!(a_code, b_code);
    assert_eq!(a_out, b_out, "filtered and unfiltered traces must analyze identically");
    let _ = std::fs::remove_file(trace);
    let _ = std::fs::remove_file(trace2);
}

// -------------------------------------------------------------------
// Escape analysis fixtures + static-finding-directed exploration.
// -------------------------------------------------------------------

const ESCAPE_SAMPLE: &str = "examples/programs/escaping_ref.mcpp";
const COPY_SAMPLE: &str = "examples/programs/copy_out.mcpp";

#[test]
fn lint_flags_the_escaping_reference_fixture() {
    let (stdout, stderr, code) = raceline(&["lint", ESCAPE_SAMPLE]);
    assert_eq!(code, 1, "{stdout}{stderr}");
    assert!(stdout.contains("Possible EscapingGuardedRef"), "{stdout}");
    assert!(stdout.contains("escaping_ref.mcpp:16"), "the returned reference\n{stdout}");
    assert!(stdout.contains("escapes via return value"), "{stdout}");
    assert!(stdout.contains("dereferenced after release at updateDomain"), "{stdout}");
    assert!(stderr.contains("5 finding(s)"), "escape + 2x2 race sides\n{stderr}");
}

#[test]
fn lint_stays_silent_on_the_copy_out_fixture() {
    let (stdout, stderr, code) = raceline(&["lint", COPY_SAMPLE]);
    assert_eq!(code, 0, "{stdout}{stderr}");
    assert!(stderr.contains("0 finding(s)"), "{stderr}");
    assert!(stdout.trim().is_empty(), "copy-outs of guarded values are safe\n{stdout}");
}

#[test]
fn lint_json_carries_the_new_kind() {
    let (stdout, _, code) = raceline(&["lint", ESCAPE_SAMPLE, "--json"]);
    assert_eq!(code, 1);
    let line = stdout.lines().next().unwrap_or_default();
    assert!(line.contains("\"findings\":5"), "{stdout}");
    assert!(line.contains("\"EscapingGuardedRef\""), "{stdout}");
}

#[test]
fn check_json_cross_check_embeds_escapes_with_confirmed_status() {
    let (stdout, _, _) = raceline(&["check", ESCAPE_SAMPLE, "--json", "--static-cross-check"]);
    let line = stdout.lines().last().unwrap_or_default();
    assert!(line.contains("\"escapes\""), "{stdout}");
    assert!(line.contains("\"route\":\"return value\""), "{stdout}");
    assert!(line.contains("\"confirmed\""), "{stdout}");
}

#[test]
fn directed_flag_requires_the_cross_check() {
    let (_, stderr, code) = raceline(&["check", ESCAPE_SAMPLE, "--explore", "4", "--directed"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--directed requires --static-cross-check"), "{stderr}");
}

#[test]
fn directed_explore_labels_the_escape_confirmed_both() {
    let (stdout, stderr, code) = raceline(&[
        "check",
        ESCAPE_SAMPLE,
        "--explore",
        "16",
        "--static-cross-check",
        "--directed",
    ]);
    assert_eq!(code, 1, "{stdout}{stderr}");
    assert!(stderr.contains("probe target(s) from static findings"), "{stderr}");
    assert!(
        stdout.contains(
            "[confirmed-both] EscapingGuardedRef at examples/programs/escaping_ref.mcpp:16"
        ),
        "the Fig 7 class is confirmed-both for the first time\n{stdout}"
    );
    assert!(
        stdout.contains("[confirmed-both] Race (write) at examples/programs/escaping_ref.mcpp:21"),
        "{stdout}"
    );
}

/// Pull the first `"first_run": N` value out of an explore-mode JSON line.
fn first_run_of(stdout: &str) -> u64 {
    let tail = &stdout[stdout.find("\"first_run\":").expect("first_run in JSON") + 12..];
    let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().expect("first_run value")
}

#[test]
fn directed_explore_confirms_in_strictly_fewer_schedules() {
    let (undirected, _, _) =
        raceline(&["check", ESCAPE_SAMPLE, "--explore", "16", "--static-cross-check", "--json"]);
    let (directed, _, _) = raceline(&[
        "check",
        ESCAPE_SAMPLE,
        "--explore",
        "16",
        "--static-cross-check",
        "--directed",
        "--json",
    ]);
    let (u, d) = (first_run_of(&undirected), first_run_of(&directed));
    assert_eq!(d, 1, "the first probe lands in the release/use window\n{directed}");
    assert!(d < u, "directed ({d}) must beat undirected ({u})\n{undirected}");
    assert!(directed.contains("\"confirmed\":true"), "{directed}");
}

#[test]
fn directed_explore_is_bit_identical_across_jobs() {
    let run = |jobs: &str| {
        raceline(&[
            "check",
            ESCAPE_SAMPLE,
            "--explore",
            "24",
            "--static-cross-check",
            "--directed",
            "--jobs",
            jobs,
        ])
    };
    let (a, _, code_a) = run("1");
    let (b, _, code_b) = run("8");
    assert_eq!(a, b, "directed sweeps must merge deterministically");
    assert_eq!(code_a, code_b);
}
